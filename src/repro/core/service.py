"""The CRP service facade.

Ties the pipeline together for callers: register nodes (each with the
recursive resolver that defines its network identity), probe CDN names
periodically or feed passive observations, then ask positioning
questions — rank candidate servers for a client, or cluster the node
population.

The service keeps per-(node, name) history in
:class:`~repro.core.tracker.RedirectionTracker` objects and builds
ratio maps over the configured window on demand.  It is deliberately
O(1) per node per probe round: no pairwise measurements anywhere —
that is the paper's core scalability claim.

Derived ratio maps are cached per (node, window) against the tracker's
change counter, so repeated positioning queries between probe rounds
hand the *same* :class:`~repro.core.ratio_map.RatioMap` objects to the
ranking path — which lets the vectorized engine
(:mod:`repro.core.engine`) reuse one packed candidate population for
every client instead of repacking per query.

Resilience (the degradation story the paper's Meridian comparison
motivates) is layered on without touching the happy path:

* A :class:`ProbePolicy` adds sim-time retry with exponential backoff
  and a per-round deadline budget to active probing.
* Each active node carries a :class:`NodeHealth` state machine
  (healthy → degraded → quarantined); quarantined nodes drop out of
  the regular probe rotation and receive periodic recovery probes that
  bring them back the moment their resolver answers again.
* :meth:`CRPService.position` answers positioning questions with
  staleness and confidence metadata — falling back to the last good
  ratio map when a node's window has gone dark — instead of silently
  returning an empty ranking.

The default :class:`ProbePolicy` keeps all of this inert (single
attempt, no quarantine), so existing experiments are bit-identical;
:meth:`ProbePolicy.resilient` is the operating point chaos experiments
use.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.ann import AnnParams
from repro.core.clustering import ClusteringResult, SmfParams, smf_cluster
from repro.core.engine import PackedPopulation
from repro.core.ratio_map import RatioMap
from repro.core.selection import (
    RankedCandidate,
    rank_candidates,
    rank_packed,
    select_top_k,
)
from repro.core.similarity import SimilarityMetric
from repro.core.tracker import Observation, RedirectionTracker
from repro.dnssim.resolver import RecursiveResolver, ResolutionError
from repro.netsim.clock import SimClock
from repro.obs import Observability, get_observability


class UnknownNodeError(KeyError):
    """A service call named a node that is not registered.

    Subclasses :class:`KeyError` so callers that guarded the old bare
    ``KeyError`` keep working, but the message now names the node.
    """

    def __init__(self, node: str) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:
        return f"node {self.node!r} is not registered with this CRP service"


class NodeState(str, Enum):
    """Health of an actively probed node."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"


@dataclass
class NodeHealth:
    """One node's probe-health bookkeeping (see :class:`ProbePolicy`)."""

    state: NodeState = NodeState.HEALTHY
    #: Consecutive probe rounds in which *every* lookup failed.
    consecutive_failed_rounds: int = 0
    last_success_at: Optional[float] = None
    quarantined_at: Optional[float] = None
    #: Round index at which the node entered quarantine.
    quarantined_round: Optional[int] = None
    quarantines: int = 0
    recoveries: int = 0


@dataclass(frozen=True)
class ProbePolicy:
    """Retry, backoff and health-transition rules for active probing.

    The default policy reproduces the legacy behaviour exactly: one
    attempt per lookup, failures counted and skipped, no quarantine.
    Retries advance the *simulated* clock by the backoff delay — a real
    client waits out its timeout — bounded per probe round by
    ``round_deadline_s`` so a wedged resolver cannot stall the round.
    """

    #: Lookup attempts per customer name per round (1 = no retries).
    max_attempts: int = 1
    #: First retry backoff, simulated seconds.
    backoff_base_s: float = 2.0
    #: Backoff multiplier per further retry.
    backoff_multiplier: float = 2.0
    #: Total backoff budget per probe round per node (None = unbounded).
    round_deadline_s: Optional[float] = 30.0
    #: Consecutive fully-failed rounds before a node counts as degraded
    #: (None disables the transition).
    degraded_after: Optional[int] = 2
    #: Consecutive fully-failed rounds before quarantine (None disables
    #: quarantine entirely — the legacy default).
    quarantine_after: Optional[int] = None
    #: While quarantined, the node gets one recovery probe every this
    #: many rounds instead of the full per-name probe.
    recovery_interval_rounds: int = 3
    #: A map older than this counts as stale in positioning answers.
    stale_after_s: float = 3600.0
    #: Serve the last good ratio map (marked stale) when a node's
    #: current window is empty.
    stale_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if self.round_deadline_s is not None and self.round_deadline_s < 0:
            raise ValueError("round_deadline_s cannot be negative")
        for name in ("degraded_after", "quarantine_after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be at least 1 (or None)")
        if (
            self.degraded_after is not None
            and self.quarantine_after is not None
            and self.quarantine_after < self.degraded_after
        ):
            raise ValueError("quarantine_after cannot come before degraded_after")
        if self.recovery_interval_rounds < 1:
            raise ValueError("recovery_interval_rounds must be at least 1")
        if self.stale_after_s <= 0:
            raise ValueError("stale_after_s must be positive")

    @classmethod
    def resilient(cls) -> "ProbePolicy":
        """The chaos-experiment operating point: retries on, health
        machine armed."""
        return cls(
            max_attempts=3,
            backoff_base_s=2.0,
            backoff_multiplier=2.0,
            round_deadline_s=30.0,
            degraded_after=2,
            quarantine_after=4,
            recovery_interval_rounds=3,
        )


#: Confidence weight per health state (see :meth:`CRPService.position`).
_STATE_CONFIDENCE = {
    NodeState.HEALTHY: 1.0,
    NodeState.DEGRADED: 0.7,
    NodeState.QUARANTINED: 0.4,
}

#: Confidence multiplier applied to stale answers.
_STALE_CONFIDENCE = 0.5

#: Sentinel marking the tracked-candidate population as not yet built
#: for any window (``None`` is a real window value, so it cannot serve).
_NO_WINDOW = object()


@dataclass(frozen=True)
class PositioningAnswer:
    """A ranking plus the metadata that says how much to trust it.

    ``confidence`` composes the client's health state with map
    freshness: 1.0 is a healthy client ranked from a fresh window;
    a quarantined client answered from a stale fallback map bottoms
    out at 0.2; no map at all is 0.0 (and an empty ranking).
    """

    client: str
    ranked: Tuple[RankedCandidate, ...]
    #: True when the map is older than the policy's staleness horizon
    #: or was served from the last-good fallback.
    stale: bool
    #: [0, 1] — see class docstring.
    confidence: float
    #: Age of the newest observation behind the map (None = no map).
    map_age_s: Optional[float]
    client_state: NodeState

    @property
    def answerable(self) -> bool:
        """False when the service had nothing at all to rank with."""
        return bool(self.ranked)

    def top(self, k: int) -> Tuple[RankedCandidate, ...]:
        """The best ``k`` candidates."""
        return self.ranked[:k]


@dataclass(frozen=True)
class CRPServiceParams:
    """Service-level defaults (the paper's operating point)."""

    #: Names to probe (the paper hand-picked two Akamai-accelerated
    #: names: a Yahoo image server and www.foxnews.com).
    customer_names: Tuple[str, ...] = ()
    #: Ratio-map window in probes; None = use the full history
    #: ("all probes").  Figure 9: 10 probes suffice.
    window_probes: Optional[int] = 10
    #: Similarity metric for selection and clustering.
    metric: SimilarityMetric = SimilarityMetric.COSINE
    #: Probes needed before a node is considered positioned.
    bootstrap_min_probes: int = 1
    #: Retry/backoff/health policy for active probing.
    probe_policy: ProbePolicy = ProbePolicy()
    #: Per-node observation-log bound handed to each tracker (None =
    #: unbounded, the batch default).  A long-running service sets this
    #: to its window size so per-client memory cannot grow with uptime;
    #: maps over windows ≤ the bound are unaffected by the trim.
    max_observations: Optional[int] = None
    #: Approximate-ranking configuration (:class:`repro.core.ann.AnnParams`).
    #: None — the default — keeps every ranking exact; set, it routes
    #: Top-K :meth:`CRPService.position` queries through the sketch
    #: index's shortlist + exact rerank (queries without a ``k`` stay
    #: exact either way).
    ann: Optional[AnnParams] = None

    def __post_init__(self) -> None:
        if not self.customer_names:
            raise ValueError("CRP needs at least one CDN customer name to probe")
        if self.window_probes is not None and self.window_probes < 1:
            raise ValueError("window_probes must be at least 1 (or None)")
        if self.max_observations is not None:
            if self.max_observations < 1:
                raise ValueError("max_observations must be at least 1 (or None)")
            if (
                self.window_probes is not None
                and self.max_observations < self.window_probes
            ):
                raise ValueError(
                    "max_observations cannot be smaller than window_probes"
                )


class CRPService:
    """A relative-network-positioning service for a set of nodes."""

    def __init__(
        self,
        clock: SimClock,
        params: CRPServiceParams,
        obs: Optional[Observability] = None,
    ) -> None:
        self.clock = clock
        self.params = params
        obs = obs if obs is not None else get_observability()
        self._obs = obs
        self._trace = obs.trace
        metrics = obs.metrics
        self._metrics = metrics
        self._m_probe_attempts = metrics.counter("crp.probe.attempts")
        self._m_probe_retries = metrics.counter("crp.probe.retries")
        self._m_probe_failures = metrics.counter("crp.probe.failures")
        self._m_probe_deadline = metrics.counter("crp.probe.deadline_hits")
        self._m_probe_rounds = metrics.counter("crp.probe.rounds")
        self._m_recovery_probes = metrics.counter("crp.probe.recoveries")
        self._m_observations = metrics.counter("crp.observations")
        self._m_map_cache_hits = metrics.counter("crp.map_cache.hits")
        self._m_map_cache_misses = metrics.counter("crp.map_cache.misses")
        self._m_position_queries = metrics.counter("crp.position.queries")
        self._m_position_stale = metrics.counter("crp.position.stale")
        self._m_position_fallbacks = metrics.counter("crp.position.fallbacks")
        self._resolvers: Dict[str, RecursiveResolver] = {}
        self._trackers: Dict[str, RedirectionTracker] = {}
        self._health: Dict[str, NodeHealth] = {}
        #: node → window → (tracker version, map).  Entries from
        #: superseded tracker versions are evicted the first time a
        #: newer version is seen, so ad-hoc window overrides cannot
        #: accumulate stale keys forever.
        self._map_cache: Dict[
            str, Dict[Optional[int], Tuple[int, Optional[RatioMap]]]
        ] = {}
        #: node → window → (observed-at, map): the last non-empty map,
        #: kept for stale-fallback positioning when a window goes dark.
        self._last_good: Dict[
            str, Dict[Optional[int], Tuple[float, RatioMap]]
        ] = {}
        #: Serving-path incremental engine state (see
        #: :meth:`track_candidates`): a long-lived packed population of
        #: the candidate set, updated in place through the engine's
        #: add/remove API instead of repacked per query.
        self._tracked_candidates: Optional[Tuple[str, ...]] = None
        self._tracked_set: frozenset = frozenset()
        self._candidate_population: Optional[PackedPopulation] = None
        self._candidate_rows: Dict[str, Optional[RatioMap]] = {}
        self._candidate_window: object = _NO_WINDOW
        self._candidate_dirty = True
        self._round_index = 0
        self.probes_issued = 0
        self.probe_failures = 0
        self.probe_retries = 0
        self.probe_deadline_hits = 0
        self.recovery_probes = 0
        self.stale_answers = 0
        #: Sim-seconds from quarantine entry to recovery, per recovery.
        self.recovery_times_s: List[float] = []
        #: Structural-change recovery (see :meth:`invalidate_windows`).
        self.window_invalidations = 0
        self.observations_invalidated = 0

    # -- membership --------------------------------------------------------

    def register_node(self, name: str, resolver: Optional[RecursiveResolver]) -> None:
        """Add a node; its resolver is what the CDN mapping sees.

        ``resolver=None`` registers a *passive-only* node: it can be
        fed with :meth:`observe` (browsing traffic, rewritten URLs) and
        positioned like any other, but :meth:`probe` refuses it and
        :meth:`probe_all` skips it.
        """
        if name in self._resolvers:
            raise ValueError(f"node {name!r} already registered")
        self._resolvers[name] = resolver
        self._trackers[name] = RedirectionTracker(
            name, max_observations=self.params.max_observations
        )
        self._health[name] = NodeHealth()

    def unregister_node(self, name: str) -> None:
        """Remove a node and its history (churn support)."""
        if name not in self._resolvers:
            raise UnknownNodeError(name)
        del self._resolvers[name]
        del self._trackers[name]
        del self._health[name]
        self._map_cache.pop(name, None)
        self._last_good.pop(name, None)
        if name in self._tracked_set:
            # A tracked candidate left the population: drop its engine
            # row and shrink the tracked set (callers passing the old
            # tuple fall back to the generic ranking path).
            if self._candidate_rows.pop(name, None) is not None:
                self._candidate_population.remove(name)
            self._tracked_candidates = tuple(
                n for n in self._tracked_candidates if n != name
            )
            self._tracked_set = frozenset(self._tracked_candidates)
            self._candidate_dirty = True

    def is_registered(self, name: str) -> bool:
        """O(1) membership check (``nodes`` sorts the full population —
        never call it on a per-request path)."""
        return name in self._resolvers

    @property
    def nodes(self) -> List[str]:
        """Registered node names, sorted."""
        return sorted(self._resolvers)

    @property
    def active_nodes(self) -> List[str]:
        """Probeable (non-passive) node names, sorted — the population
        :meth:`probe_all` walks and event workloads cover."""
        return [n for n in self.nodes if self._resolvers[n] is not None]

    def tracker(self, name: str) -> RedirectionTracker:
        """A node's redirection history."""
        try:
            return self._trackers[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    # -- serving-path incremental engine ------------------------------------

    def track_candidates(self, names: Sequence[str]) -> None:
        """Keep a long-lived packed population of this candidate set.

        The serving layer's streaming entry point: once tracked,
        :meth:`position` calls naming exactly this candidate set skip
        per-query packing entirely — candidate map changes stream into
        one :class:`~repro.core.engine.PackedPopulation` through its
        add/remove API, and a query is a single matvec over it.  All
        names must already be registered.  Rankings are identical to
        the generic path (see :func:`~repro.core.selection.rank_packed`).
        """
        names = tuple(names)
        for name in names:
            if name not in self._resolvers:
                raise UnknownNodeError(name)
        self._tracked_candidates = names
        self._tracked_set = frozenset(names)
        self._candidate_population = PackedPopulation()
        self._candidate_rows = {}
        self._candidate_window = _NO_WINDOW
        self._candidate_dirty = True

    @property
    def tracked_candidates(self) -> Optional[Tuple[str, ...]]:
        """The candidate set under incremental tracking (None = off)."""
        return self._tracked_candidates

    @property
    def candidate_population(self) -> Optional[PackedPopulation]:
        """The live packed candidate population (None until tracked)."""
        return self._candidate_population

    def _packed_candidates(self, window_probes: Optional[int]) -> PackedPopulation:
        """The tracked population, refreshed for one window.

        Cheap when nothing moved: a dirty flag set by the ingest paths
        gates the refresh, so a burst of positioning queries between
        observations touches no candidate state at all.  On refresh,
        only candidates whose cached map *object* changed (the map
        cache is versioned, so object identity is change detection) are
        re-streamed through the engine's remove/add API.
        """
        if window_probes == -1:
            window_probes = self.params.window_probes
        population = self._candidate_population
        if not self._candidate_dirty and window_probes == self._candidate_window:
            return population
        rows = self._candidate_rows
        for name in self._tracked_candidates:
            current = self.ratio_map(name, window_probes=window_probes)
            previous = rows.get(name)
            if current is previous:
                continue
            if previous is not None:
                population.remove(name)
            if current is not None:
                population.add(name, current)
            rows[name] = current
        self._candidate_dirty = False
        self._candidate_window = window_probes
        return population

    # -- structural-change recovery ------------------------------------------

    def invalidate_windows(
        self,
        nodes: Optional[Iterable[str]] = None,
        before: Optional[float] = None,
    ) -> int:
        """Drop pre-change history so ratio maps rebuild from scratch.

        The recovery action for a detected CDN remap
        (:mod:`repro.core.change`): observations older than ``before``
        (default: now) describe a mapping that no longer exists, so
        instead of letting windows blend pre- and post-change
        redirections, each affected node's tracker log is truncated and
        its cached maps — including the last-good fallback maps, which
        would otherwise keep serving the old world — are dropped.
        Returns the number of observations discarded.
        """
        if before is None:
            before = self.clock.now
        if nodes is None:
            names = self.nodes
        else:
            names = list(nodes)
        dropped = 0
        for node in names:
            dropped += self.tracker(node).discard_before(before)
            self._map_cache.pop(node, None)
            self._last_good.pop(node, None)
        if self._tracked_set:
            self._candidate_dirty = True
        self.window_invalidations += 1
        self.observations_invalidated += dropped
        self._metrics.counter("crp.windows_invalidated").inc()
        self._trace.emit(
            "remap.recovery",
            self.clock.now,
            "crp-service",
            nodes=len(names),
            dropped=dropped,
            before=before,
        )
        return dropped

    # -- health ------------------------------------------------------------

    def health(self, name: str) -> NodeHealth:
        """A node's probe-health record."""
        try:
            return self._health[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def health_summary(self) -> Dict[str, int]:
        """Node counts per health state (active nodes only)."""
        counts = {state.value: 0 for state in NodeState}
        for name, health in self._health.items():
            if self._resolvers[name] is not None:
                counts[health.state.value] += 1
        return counts

    def quarantined_nodes(self) -> List[str]:
        """Names currently quarantined, sorted."""
        return sorted(
            name
            for name, health in self._health.items()
            if health.state is NodeState.QUARANTINED
        )

    def _transition(self, node: str, health: NodeHealth, to_state: NodeState) -> None:
        """Move a node's health state, recording the transition."""
        from_state = health.state
        if from_state is to_state:
            return
        health.state = to_state
        self._metrics.counter(
            "crp.health.transitions", src=from_state.value, dst=to_state.value
        ).inc()
        self._trace.emit(
            "health.transition",
            self.clock.now,
            node,
            src=from_state.value,
            dst=to_state.value,
        )

    def _record_round_outcome(self, node: str, succeeded: bool) -> None:
        """Advance the health state machine after one probe round."""
        health = self._health[node]
        policy = self.params.probe_policy
        now = self.clock.now
        if succeeded:
            if health.state is NodeState.QUARANTINED:
                health.recoveries += 1
                if health.quarantined_at is not None:
                    self.recovery_times_s.append(now - health.quarantined_at)
            self._transition(node, health, NodeState.HEALTHY)
            health.consecutive_failed_rounds = 0
            health.last_success_at = now
            health.quarantined_at = None
            health.quarantined_round = None
            return
        health.consecutive_failed_rounds += 1
        failed = health.consecutive_failed_rounds
        if (
            policy.quarantine_after is not None
            and failed >= policy.quarantine_after
            and health.state is not NodeState.QUARANTINED
        ):
            self._transition(node, health, NodeState.QUARANTINED)
            health.quarantines += 1
            health.quarantined_at = now
            health.quarantined_round = self._round_index
        elif (
            policy.degraded_after is not None
            and failed >= policy.degraded_after
            and health.state is NodeState.HEALTHY
        ):
            self._transition(node, health, NodeState.DEGRADED)

    # -- probing ------------------------------------------------------------

    def _resolve_with_retry(self, node, resolver, customer_name, budget: List[float]):
        """One lookup under the probe policy; returns a result or None.

        ``budget`` is a single-cell mutable holding the remaining
        backoff budget for this probe round (shared across names).
        """
        policy = self.params.probe_policy
        backoff = policy.backoff_base_s
        for attempt in range(policy.max_attempts):
            self.probes_issued += 1
            self._m_probe_attempts.inc()
            if attempt > 0:
                self.probe_retries += 1
                self._m_probe_retries.inc()
                self._trace.emit(
                    "probe.retry", self.clock.now, node,
                    name=customer_name, attempt=attempt,
                )
            else:
                self._trace.emit(
                    "probe.attempt", self.clock.now, node, name=customer_name
                )
            try:
                return resolver.resolve(customer_name)
            except ResolutionError:
                self.probe_failures += 1
                self._m_probe_failures.inc()
                self._trace.emit(
                    "probe.failure", self.clock.now, node,
                    name=customer_name, attempt=attempt,
                )
                if attempt + 1 >= policy.max_attempts:
                    return None
                if budget[0] < backoff:
                    # Round deadline: stop retrying this name.
                    self.probe_deadline_hits += 1
                    self._m_probe_deadline.inc()
                    self._trace.emit(
                        "probe.deadline", self.clock.now, node, name=customer_name
                    )
                    return None
                budget[0] -= backoff
                self.clock.advance(backoff)
                backoff *= policy.backoff_multiplier
        return None

    def probe(self, node: str) -> List[Observation]:
        """Actively probe all customer names once for one node.

        Failed lookups are retried under the probe policy (sim-time
        backoff within the round's deadline budget), then counted and
        skipped — a flaky resolver degrades gracefully rather than
        wedging the probe loop.  The node's health state advances on
        the round's outcome.
        """
        resolver = self._resolvers.get(node)
        if node not in self._resolvers:
            raise UnknownNodeError(node)
        if resolver is None:
            raise ValueError(f"node {node!r} is passive-only and cannot be probed")
        tracker = self._trackers[node]
        policy = self.params.probe_policy
        deadline = policy.round_deadline_s
        budget = [float("inf") if deadline is None else deadline]
        recorded = []
        for customer_name in self.params.customer_names:
            result = self._resolve_with_retry(node, resolver, customer_name, budget)
            if result is not None and result.addresses:
                recorded.append(
                    tracker.observe(self.clock.now, customer_name, result.addresses)
                )
        if recorded:
            self._m_observations.inc(len(recorded))
            if node in self._tracked_set:
                self._candidate_dirty = True
        self._record_round_outcome(node, succeeded=bool(recorded))
        return recorded

    def probe_scheduled(self, node: str) -> List[Observation]:
        """One node's event-driven probe (the engine's entry point).

        Equivalent to the node's slice of :meth:`probe_all`, minus the
        round counter (event mode has no rounds): quarantined nodes get
        recovery-probe accounting, then probe as usual.  Workloads — not
        a round-modulus — set the recovery cadence in event mode, by
        deciding when a quarantined node's next probe event fires.
        """
        health = self._health.get(node)
        if health is not None and health.state is NodeState.QUARANTINED:
            self.recovery_probes += 1
            self._m_recovery_probes.inc()
            self._trace.emit("probe.recovery", self.clock.now, node)
        return self.probe(node)

    def probe_all(self) -> int:
        """One probe round over every active node; returns observations
        made.

        Passive-only nodes are skipped.  Quarantined nodes leave the
        regular rotation: they get a single recovery probe every
        ``recovery_interval_rounds`` rounds and re-enter service on the
        first success.
        """
        policy = self.params.probe_policy
        total = 0
        for node in self.nodes:
            if self._resolvers[node] is None:
                continue
            health = self._health[node]
            if (
                health.state is NodeState.QUARANTINED
                and health.quarantined_round is not None
            ):
                rounds_in = self._round_index - health.quarantined_round
                if rounds_in % policy.recovery_interval_rounds != 0:
                    continue
                self.recovery_probes += 1
                self._m_recovery_probes.inc()
                self._trace.emit("probe.recovery", self.clock.now, node)
            total += len(self.probe(node))
        self._round_index += 1
        self._m_probe_rounds.inc()
        return total

    def observe(self, node: str, customer_name: str, addresses: Sequence[str]) -> None:
        """Ingest a passively-seen redirection (Section VI's zero-probe
        mode: reuse user-generated DNS translations)."""
        self.tracker(node).observe(self.clock.now, customer_name, addresses)
        if node in self._tracked_set:
            self._candidate_dirty = True

    # -- positioning -----------------------------------------------------------

    def ratio_map(
        self,
        node: str,
        window_probes: Optional[int] = -1,
    ) -> Optional[RatioMap]:
        """A node's current ratio map over the configured window.

        Pass ``window_probes`` explicitly to override the service
        default (``None`` means all probes); the sentinel ``-1`` keeps
        the default.  Returns ``None`` for nodes that have not
        bootstrapped.

        Maps are cached against the node's tracker version: between
        probe rounds, repeated queries return the identical object, so
        the vectorized engine's packed-population cache stays hot.
        When the tracker moves on, every cached window from the
        superseded version is evicted at once, and last-good fallback
        maps held for superseded window overrides (other than the one
        being queried) are pruned with it — so churning through ad-hoc
        windows cannot pin stale maps forever.
        """
        tracker = self.tracker(node)
        if tracker.probe_count < self.params.bootstrap_min_probes:
            return None
        if window_probes == -1:
            window_probes = self.params.window_probes
        node_cache = self._map_cache.setdefault(node, {})
        cached = node_cache.get(window_probes)
        if cached is not None and cached[0] == tracker.version:
            self._m_map_cache_hits.inc()
            return cached[1]
        self._m_map_cache_misses.inc()
        # Superseded: drop every window cached against an old version.
        stale_windows = [
            window
            for window, (version, _) in node_cache.items()
            if version != tracker.version
        ]
        for window in stale_windows:
            del node_cache[window]
        # Last-good maps follow the same churn, except for the window
        # being queried right now — that one is exactly what
        # stale-fallback positioning may still need if the fresh window
        # has gone dark.
        node_last_good = self._last_good.get(node)
        if node_last_good is not None and stale_windows:
            for window in stale_windows:
                if window != window_probes:
                    node_last_good.pop(window, None)
            if not node_last_good:
                del self._last_good[node]
        ratio_map = tracker.ratio_map(window_probes=window_probes)
        node_cache[window_probes] = (tracker.version, ratio_map)
        if ratio_map is not None and tracker.last_observation_at is not None:
            self._last_good.setdefault(node, {})[window_probes] = (
                tracker.last_observation_at,
                ratio_map,
            )
        return ratio_map

    def ratio_maps(
        self,
        nodes: Optional[Iterable[str]] = None,
        window_probes: Optional[int] = -1,
    ) -> Dict[str, Optional[RatioMap]]:
        """Ratio maps for many nodes (None entries for unbootstrapped)."""
        if nodes is None:
            nodes = self.nodes
        return {n: self.ratio_map(n, window_probes=window_probes) for n in nodes}

    def _map_with_fallback(
        self, node: str, window_probes: Optional[int]
    ) -> Tuple[Optional[RatioMap], Optional[float], bool]:
        """A node's map plus (observed-at, served-stale) for metadata.

        Prefers the fresh window; when it is empty and the policy
        allows, serves the last good map for the same window instead.
        """
        fresh = self.ratio_map(node, window_probes=window_probes)
        if window_probes == -1:
            window_probes = self.params.window_probes
        if fresh is not None:
            tracker = self._trackers[node]
            return fresh, tracker.last_observation_at, False
        if not self.params.probe_policy.stale_fallback:
            return None, None, False
        held = self._last_good.get(node, {}).get(window_probes)
        if held is None:
            return None, None, False
        observed_at, ratio_map = held
        self._m_position_fallbacks.inc()
        self._trace.emit(
            "position.fallback", self.clock.now, node, observed_at=observed_at
        )
        return ratio_map, observed_at, True

    def position(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
        *,
        k: Optional[int] = None,
    ) -> PositioningAnswer:
        """Rank candidates for a client, with degradation metadata.

        Unlike :meth:`rank_servers` (which silently returns an empty
        list), the answer says *why* it should or should not be
        trusted: the client's health state, the age of the map behind
        the ranking, whether a stale fallback was used, and a scalar
        confidence composing the two.

        ``k`` only takes effect when the service was configured with
        :attr:`CRPServiceParams.ann`: the answer then carries the best
        ``k`` rows via the sketch shortlist + exact rerank instead of
        a full ranking.  Without ``ann`` the argument is ignored, so
        exact-mode answers are byte-identical whatever the caller
        passes.
        """
        if client not in self._resolvers:
            raise UnknownNodeError(client)
        self._m_position_queries.inc()
        client_map, observed_at, from_fallback = self._map_with_fallback(
            client, window_probes
        )
        state = self._health[client].state
        now = self.clock.now
        age = None if observed_at is None else max(0.0, now - observed_at)
        if client_map is None:
            return PositioningAnswer(
                client=client,
                ranked=(),
                stale=False,
                confidence=0.0,
                map_age_s=None,
                client_state=state,
            )
        tracked = self._tracked_candidates
        if tracked is not None and (
            candidates is tracked or tuple(candidates) == tracked
        ):
            # Streaming path: the long-lived packed population absorbs
            # candidate-map changes incrementally; no per-query packing.
            population = self._packed_candidates(window_probes)
            use_k = k if self.params.ann is not None else None
            ranked = rank_packed(
                client_map,
                population,
                self.params.metric,
                exclude=client if client in self._tracked_set else None,
                k=use_k,
                approx=self.params.ann if use_k is not None else None,
            )
        else:
            candidate_maps = {
                name: self.ratio_map(name, window_probes=window_probes)
                for name in candidates
                if name != client
            }
            if self.params.ann is not None and k is not None:
                ranked = select_top_k(
                    client_map, candidate_maps, k, self.params.metric,
                    approx=self.params.ann,
                )
            else:
                ranked = rank_candidates(
                    client_map, candidate_maps, self.params.metric
                )
        stale = from_fallback or (
            age is not None and age > self.params.probe_policy.stale_after_s
        )
        if stale:
            self.stale_answers += 1
            self._m_position_stale.inc()
            self._trace.emit(
                "position.stale", now, client,
                fallback=from_fallback, age_s=age,
            )
        confidence = _STATE_CONFIDENCE[state] * (_STALE_CONFIDENCE if stale else 1.0)
        return PositioningAnswer(
            client=client,
            ranked=tuple(ranked),
            stale=stale,
            confidence=confidence,
            map_age_s=age,
            client_state=state,
        )

    def rank_servers(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> List[RankedCandidate]:
        """Candidates ranked by similarity to the client, best first.

        Returns an empty list when the client has no map yet (see
        :meth:`position` for the metadata-carrying variant).
        """
        client_map = self.ratio_map(client, window_probes=window_probes)
        if client_map is None:
            return []
        candidate_maps = {
            name: self.ratio_map(name, window_probes=window_probes)
            for name in candidates
            if name != client
        }
        candidate_maps = {n: m for n, m in candidate_maps.items() if m is not None}
        return rank_candidates(client_map, candidate_maps, self.params.metric)

    def closest_server(
        self,
        client: str,
        candidates: Sequence[str],
        window_probes: Optional[int] = -1,
    ) -> Optional[RankedCandidate]:
        """The Top-1 server pick for a client."""
        ranked = self.rank_servers(client, candidates, window_probes=window_probes)
        return ranked[0] if ranked else None

    def closer_of(
        self,
        target: str,
        a: str,
        b: str,
        window_probes: Optional[int] = -1,
    ) -> Optional[str]:
        """The paper's primitive: which of ``a``, ``b`` is closer to
        ``target``?  ("if cos_sim(A, C) < cos_sim(B, C), then host B is
        the closer to C", Section III-B.)

        Returns ``None`` when the question is unanswerable — the
        target has no map, or both similarities are zero (CRP can only
        say neither is likely nearby).
        """
        ranked = self.rank_servers(target, [a, b], window_probes=window_probes)
        if not ranked or not ranked[0].has_signal:
            return None
        return ranked[0].name

    def cluster(
        self,
        nodes: Optional[Sequence[str]] = None,
        smf_params: Optional[SmfParams] = None,
        window_probes: Optional[int] = -1,
    ) -> ClusteringResult:
        """SMF-cluster the node population (Section IV-B)."""
        if smf_params is None:
            smf_params = SmfParams(metric=self.params.metric)
        maps = self.ratio_maps(nodes, window_probes=window_probes)
        return smf_cluster(maps, smf_params)
