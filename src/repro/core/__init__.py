"""CRP — CDN-based Relative Network Positioning (the paper's contribution).

The core pipeline:

1. A node observes CDN redirections over time
   (:class:`~repro.core.tracker.RedirectionTracker`).
2. Its history is summarised as a ratio map
   (:class:`~repro.core.ratio_map.RatioMap`) — replica server →
   fraction of redirections in the window.
3. Relative proximity between two nodes is the cosine similarity of
   their ratio maps (:mod:`repro.core.similarity`).
4. Applications are built on the metric: closest-node selection
   (:mod:`repro.core.selection`) and Strongest-Mappings-First
   clustering (:mod:`repro.core.clustering`).

:class:`~repro.core.service.CRPService` wires the pipeline to live DNS
probing and is the facade most callers want.
"""

from repro.core.ann import AnnParams, SketchIndex, approx_top_k, index_for
from repro.core.engine import PackedPopulation, ReplicaVocabulary, packed_for
from repro.core.ratio_map import RatioMap
from repro.core.similarity import (
    SimilarityMetric,
    cosine_similarity,
    jaccard_similarity,
    overlap_similarity,
    similarity,
)
from repro.core.tracker import RedirectionTracker, Observation
from repro.core.selection import RankedCandidate, rank_candidates, select_closest, select_top_k
from repro.core.clustering import (
    Cluster,
    ClusteringResult,
    CenterPolicy,
    SmfParams,
    smf_cluster,
)
from repro.core.quality import ClusterQuality, evaluate_cluster, evaluate_clustering, good_cluster_buckets
from repro.core.service import (
    CRPService,
    CRPServiceParams,
    NodeHealth,
    NodeState,
    PositioningAnswer,
    ProbePolicy,
    UnknownNodeError,
)
from repro.core.change import (
    ChangeDetector,
    ChangeDetectorParams,
    ChangeSignal,
    ClusterSnapshot,
    RecoveryPolicy,
    snapshot_distance,
)
from repro.core.filters import NameQualityFilter, NameVerdict
from repro.core.exchange import (
    LocalPositioning,
    MapAdvertisement,
    PeerMapStore,
    advertise,
)

__all__ = [
    "AnnParams",
    "SketchIndex",
    "approx_top_k",
    "index_for",
    "PackedPopulation",
    "ReplicaVocabulary",
    "packed_for",
    "RatioMap",
    "SimilarityMetric",
    "cosine_similarity",
    "jaccard_similarity",
    "overlap_similarity",
    "similarity",
    "RedirectionTracker",
    "Observation",
    "RankedCandidate",
    "rank_candidates",
    "select_closest",
    "select_top_k",
    "Cluster",
    "ClusteringResult",
    "CenterPolicy",
    "SmfParams",
    "smf_cluster",
    "ClusterQuality",
    "evaluate_cluster",
    "evaluate_clustering",
    "good_cluster_buckets",
    "CRPService",
    "CRPServiceParams",
    "NodeHealth",
    "NodeState",
    "PositioningAnswer",
    "ProbePolicy",
    "UnknownNodeError",
    "ChangeDetector",
    "ChangeDetectorParams",
    "ChangeSignal",
    "ClusterSnapshot",
    "RecoveryPolicy",
    "snapshot_distance",
    "NameQualityFilter",
    "NameVerdict",
    "LocalPositioning",
    "MapAdvertisement",
    "PeerMapStore",
    "advertise",
]
