"""Decentralised ratio-map distribution.

Section III-B closes with the deployment question: a CRP-based service
"could be easily built as a stand-alone service, shared by multiple
applications, or as part of an application library that takes
advantage of application-specific communication to distribute
redirection maps."  This module implements that application-library
form:

* a node wraps its current ratio map in a versioned, timestamped
  :class:`MapAdvertisement` (JSON-serialisable — it rides inside
  whatever messages the application already exchanges: BitTorrent
  extension handshakes, game session packets, gossip);
* every node keeps a :class:`PeerMapStore` of the freshest
  advertisement per peer, with staleness expiry;
* positioning queries (rank peers, find closest) then run entirely
  locally against the store — no service, no coordinator, O(1) state
  per known peer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ratio_map import RatioMap
from repro.core.selection import RankedCandidate, rank_candidates
from repro.core.similarity import SimilarityMetric


@dataclass(frozen=True)
class MapAdvertisement:
    """One node's ratio map, packaged for exchange."""

    node: str
    #: Monotone per-node version (a fresh map bumps it).
    version: int
    #: When the map was built (sender's clock; receivers only compare
    #: ages against their own receive time).
    built_at: float
    ratio_map: RatioMap

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("advertisement needs a node name")
        if self.version < 0:
            raise ValueError("version cannot be negative")

    # -- wire format -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "node": self.node,
                "version": self.version,
                "built_at": self.built_at,
                "map": dict(self.ratio_map),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "MapAdvertisement":
        data = json.loads(payload)
        return cls(
            node=data["node"],
            version=int(data["version"]),
            built_at=float(data["built_at"]),
            ratio_map=RatioMap(data["map"]),
        )


class PeerMapStore:
    """The freshest advertisement per peer, with staleness expiry.

    ``max_age_seconds`` bounds how stale a peer's map may be before it
    stops answering queries — Figure 9's lesson applied to exchanged
    maps: histories go stale, so must advertisements.
    """

    def __init__(self, own_node: str, max_age_seconds: float = 6 * 3600.0) -> None:
        if max_age_seconds <= 0:
            raise ValueError("max_age_seconds must be positive")
        self.own_node = own_node
        self.max_age_seconds = max_age_seconds
        self._peers: Dict[str, Tuple[MapAdvertisement, float]] = {}
        self.accepted = 0
        self.rejected_stale_version = 0

    def ingest(self, advertisement: MapAdvertisement, received_at: float) -> bool:
        """Store an advertisement; returns True when accepted.

        Out-of-order or duplicate versions are dropped (the freshest
        version wins; ties keep the first seen).  A node's own
        advertisements are ignored.
        """
        if advertisement.node == self.own_node:
            return False
        current = self._peers.get(advertisement.node)
        if current is not None and advertisement.version <= current[0].version:
            self.rejected_stale_version += 1
            return False
        self._peers[advertisement.node] = (advertisement, received_at)
        self.accepted += 1
        return True

    def forget(self, node: str) -> None:
        """Drop a departed peer."""
        self._peers.pop(node, None)

    def fresh_maps(self, now: float) -> Dict[str, RatioMap]:
        """Maps of peers whose advertisements are still fresh."""
        fresh = {}
        for node, (advertisement, received_at) in self._peers.items():
            if now - received_at <= self.max_age_seconds:
                fresh[node] = advertisement.ratio_map
        return fresh

    def known_peers(self) -> List[str]:
        return sorted(self._peers)

    def __len__(self) -> int:
        return len(self._peers)


class LocalPositioning:
    """Positioning queries over exchanged maps — no central service.

    A node hands in its *own* current ratio map and asks questions
    against its peer store.
    """

    def __init__(
        self,
        store: PeerMapStore,
        metric: SimilarityMetric = SimilarityMetric.COSINE,
    ) -> None:
        self.store = store
        self.metric = metric

    def rank_peers(
        self,
        own_map: RatioMap,
        now: float,
        peers: Optional[Sequence[str]] = None,
    ) -> List[RankedCandidate]:
        """Peers ranked by similarity to this node, freshest maps only."""
        maps = self.store.fresh_maps(now)
        if peers is not None:
            maps = {n: m for n, m in maps.items() if n in set(peers)}
        return rank_candidates(own_map, maps, self.metric)

    def closest_peer(
        self,
        own_map: RatioMap,
        now: float,
        peers: Optional[Sequence[str]] = None,
    ) -> Optional[RankedCandidate]:
        ranked = self.rank_peers(own_map, now, peers)
        return ranked[0] if ranked else None


def advertise(
    node: str,
    ratio_map: RatioMap,
    version: int,
    now: float,
) -> MapAdvertisement:
    """Convenience constructor for a node's outgoing advertisement."""
    return MapAdvertisement(node=node, version=version, built_at=now, ratio_map=ratio_map)
