"""Similarity metrics over ratio maps.

The paper's metric is cosine similarity (Section III-B):

    cos_sim(A, B) = Σ ν_A,i · ν_B,i / (‖ν_A‖ · ‖ν_B‖)

Identical maps score 1; maps with disjoint replica sets score 0 — in
which case CRP can say only that the nodes are *not* likely to be near
one another.  Two alternative metrics are provided for the ablation
benches: Jaccard similarity of the replica *sets* (ignores ratios) and
histogram overlap (Σ min of ratios); the benches show cosine's use of
redirection frequencies buys real accuracy over set overlap.
"""

from __future__ import annotations

from enum import Enum

from repro.core.ratio_map import RatioMap


class SimilarityMetric(str, Enum):
    """Which map-similarity definition to use."""

    COSINE = "cosine"
    JACCARD = "jaccard"
    OVERLAP = "overlap"


def cosine_similarity(a: RatioMap, b: RatioMap) -> float:
    """The paper's metric: normalised dot product of ratio vectors.

    Always in [0, 1] because ratios are non-negative.
    """
    denominator = a.norm * b.norm
    if denominator == 0.0:
        return 0.0
    value = a.dot(b) / denominator
    # Guard the inevitable floating-point overshoot at identity.
    return min(1.0, max(0.0, value))


def jaccard_similarity(a: RatioMap, b: RatioMap) -> float:
    """|support ∩ support| / |support ∪ support| — ignores frequencies."""
    sa, sb = a.support, b.support
    union = len(sa | sb)
    if union == 0:
        return 0.0
    return len(sa & sb) / union


def overlap_similarity(a: RatioMap, b: RatioMap) -> float:
    """Histogram intersection: Σ_i min(ν_A,i, ν_B,i), in [0, 1]."""
    common = a.support & b.support
    return sum(min(a.ratio(r), b.ratio(r)) for r in common)


_METRICS = {
    SimilarityMetric.COSINE: cosine_similarity,
    SimilarityMetric.JACCARD: jaccard_similarity,
    SimilarityMetric.OVERLAP: overlap_similarity,
}


def similarity(a: RatioMap, b: RatioMap, metric: SimilarityMetric = SimilarityMetric.COSINE) -> float:
    """Dispatch to the chosen similarity metric."""
    return _METRICS[metric](a, b)
