"""Structural-change detection from clustering snapshots (YouLighter).

CRP assumes the CDN's redirection behaviour is *stable enough* that
ratio maps encode relative position.  When the CDN itself re-maps —
regions re-homed, replicas migrated, clusters launched or retired —
that assumption breaks, and a positioning service needs to notice
from the outside, without any feed from the CDN.

YouLighter (PAPERS.md) shows how: cluster the population periodically
and measure the *distance between successive clustering snapshots*.
Under a stable CDN the clustering drifts slowly; a structural change
moves many nodes' ratio maps at once, so consecutive snapshots
suddenly disagree.  This module reproduces that methodology on CRP's
own primitives:

* A **snapshot** is one SMF clustering of the monitored population
  over a short recent window (short so post-change behaviour shows up
  within a few probe rounds), reduced to per-cluster **centroids**
  (the normalised mean ratio map of the members, over the shared
  replica vocabulary) and **constituencies** (the member sets).
* The **snapshot distance** blends two shifts: how far each cluster's
  centroid moved from its best-matching predecessor (1 − cosine,
  size-weighted), and how much cluster membership churned (1 − mean
  per-node Jaccard between the node's old and new cluster, counting
  unclustered nodes as singletons).  The default flagging statistic is
  the *centroid* shift alone (``centroid_weight=1``): membership
  churn grows with population size and probe rotation — it is the
  noise term at scale — while a structural change must move the
  centroids themselves, because the replica vocabulary changes.
* The detector flags change when the distance crosses a **calibrated
  threshold**: an absolute cap for unmistakable shifts, plus a
  self-calibrating rule — distance above the running mean of quiet
  comparisons by ``sigma`` standard deviations — so one parameter set
  transfers across population scales whose baseline churn differs.
  Flagged and elevated comparisons are excluded from the baseline.
  After an entry-grade elevation a lower *continuation* sigma takes
  over for a short window (hysteresis), so a change that keeps
  unfolding across several snapshots keeps being tracked.  The window
  is anchored at the last *entry-grade* comparison only — relaxed
  continuation flags never extend it, so the chain dies out once the
  full-strength signal fades.  An optional cooldown can rate-limit
  how often detections are reported.

Detection is strictly *read-only* with respect to the simulation: it
only consumes ratio maps already collected, and SMF clustering draws
from its own seeded generator — so enabling the detector never
perturbs probe behaviour (the differential self-check relies on
this).  What to *do* on detection is the caller's policy
(:class:`RecoveryPolicy`); the scenario driver applies it via
:meth:`~repro.core.service.CRPService.invalidate_windows`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clustering import SmfParams
from repro.obs import Observability, get_observability


class RecoveryPolicy(str, Enum):
    """What a positioning service does once change is detected."""

    #: Do nothing: keep blending pre- and post-change observations and
    #: let windowing/decay age the old world out on its own.
    PASSIVE = "passive"
    #: Invalidate ratio-map windows back to the previous snapshot:
    #: rebuild maps from post-change observations only.
    INVALIDATE = "invalidate"


@dataclass(frozen=True)
class ChangeDetectorParams:
    """Snapshot cadence and flagging thresholds."""

    #: Seconds between clustering snapshots.
    interval_s: float = 1800.0
    #: Absolute snapshot distance above which a comparison counts as
    #: elevated no matter what the baseline says — the cap for
    #: unmistakable shifts (calibrated against quiet-population churn
    #: at small scale, which peaks well below it).
    threshold: float = 0.2
    #: Self-calibration: a comparison is also elevated when its
    #: distance exceeds the running mean of quiet comparisons by this
    #: many standard deviations.  Baseline churn varies with
    #: population size, so a fixed absolute threshold tuned on one
    #: scale either misses changes or false-fires on another; the
    #: sigma rule adapts.  ``None`` disables it (pure absolute mode).
    sigma: Optional[float] = 3.5
    #: Quiet comparisons required before the sigma rule may fire (the
    #: absolute cap still applies during warm-up).
    baseline_min: int = 3
    #: Hysteresis: while an entry-grade elevation is recent (within
    #: ``continuation_window_s``), comparisons are judged against this
    #: lower sigma instead — a structural change that keeps unfolding
    #: across snapshots produces a trail of moderately elevated
    #: distances that the (conservative) entry sigma would miss.
    #: Continuation-grade comparisons never refresh the window, so the
    #: relaxed rule cannot keep itself alive.  The no-change control
    #: is unaffected by construction: without a first entry-grade
    #: elevation the continuation rule never activates.  ``None``
    #: disables it.
    continuation_sigma: Optional[float] = 2.0
    #: How long after an entry-grade elevation the continuation sigma
    #: applies.
    continuation_window_s: float = 3600.0
    #: Elevated comparisons in a row before change is flagged.
    consecutive: int = 1
    #: Minimum seconds between flagged detections.  The default equals
    #: one snapshot interval — every comparison may flag, so a change
    #: that keeps unfolding across several snapshots keeps being
    #: reported (and keeps triggering recovery) until it quiets down.
    #: Raise it to rate-limit recovery actions under noisier regimes;
    #: false-positive suppression is the sigma rule's job, not this.
    cooldown_s: float = 1800.0
    #: Snapshots need at least this many positioned nodes.
    min_positioned: int = 8
    #: Weight of centroid shift vs constituency shift in the blended
    #: distance.  The default 1.0 flags on pure centroid shift — see
    #: the module docstring for why membership churn is the noise term.
    centroid_weight: float = 1.0
    #: Ratio-map window for snapshots (``-1`` = service default,
    #: ``None`` = all probes).  Keep it recent: a snapshot over all
    #: history barely moves when the CDN does.
    window_probes: Optional[int] = 12

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.sigma is not None and self.sigma <= 0:
            raise ValueError("sigma must be positive (or None)")
        if self.baseline_min < 1:
            raise ValueError("baseline_min must be at least 1")
        if self.continuation_sigma is not None and self.continuation_sigma <= 0:
            raise ValueError("continuation_sigma must be positive (or None)")
        if self.continuation_window_s < 0:
            raise ValueError("continuation_window_s cannot be negative")
        if self.consecutive < 1:
            raise ValueError("consecutive must be at least 1")
        if not 0.0 <= self.centroid_weight <= 1.0:
            raise ValueError("centroid_weight must be in [0, 1]")


@dataclass(frozen=True)
class ChangeSignal:
    """One snapshot comparison: the distance and whether it flagged."""

    at: float
    previous_at: float
    distance: float
    centroid_shift: float
    constituency_shift: float
    flagged: bool


@dataclass(frozen=True)
class ClusterSnapshot:
    """One clustering reduced to centroids + constituencies."""

    at: float
    #: (centroid over the replica vocabulary, member set) per cluster.
    clusters: Tuple[Tuple[Dict[str, float], frozenset], ...]
    #: node → cluster index (None = unclustered singleton).
    assignment: Dict[str, Optional[int]]


def _cosine(a: Dict[str, float], b: Dict[str, float]) -> float:
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    if dot <= 0.0:
        return 0.0
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    return dot / (norm_a * norm_b)


def snapshot_distance(
    previous: ClusterSnapshot,
    current: ClusterSnapshot,
    centroid_weight: float = 0.5,
) -> Tuple[float, float, float]:
    """YouLighter-style distance between two clustering snapshots.

    Returns ``(distance, centroid_shift, constituency_shift)``, each in
    [0, 1].  Centroid shift: every current cluster is matched to the
    previous cluster whose centroid it is most similar to, and the
    size-weighted mean of ``1 - cosine`` is taken (a cluster with no
    plausible predecessor — a lit-up replica set — contributes a full
    shift of 1).  Constituency shift: per node, the Jaccard overlap of
    its previous and current cluster constituencies (unclustered nodes
    count as singletons), averaged and inverted.
    """
    # Centroid shift, over current clusters.
    weighted = 0.0
    weight = 0
    for centroid, members in current.clusters:
        best = 0.0
        for prev_centroid, _ in previous.clusters:
            best = max(best, _cosine(centroid, prev_centroid))
        weighted += len(members) * (1.0 - best)
        weight += len(members)
    centroid_shift = weighted / weight if weight else 0.0

    # Constituency shift, over all nodes either snapshot assigned.
    def constituency(snapshot: ClusterSnapshot, node: str) -> frozenset:
        index = snapshot.assignment.get(node)
        if index is None:
            return frozenset((node,))
        return snapshot.clusters[index][1]

    nodes = sorted(set(previous.assignment) | set(current.assignment))
    if nodes:
        overlap = 0.0
        for node in nodes:
            before, after = constituency(previous, node), constituency(current, node)
            union = len(before | after)
            overlap += len(before & after) / union if union else 1.0
        constituency_shift = 1.0 - overlap / len(nodes)
    else:
        constituency_shift = 0.0

    distance = (
        centroid_weight * centroid_shift
        + (1.0 - centroid_weight) * constituency_shift
    )
    return distance, centroid_shift, constituency_shift


class ChangeDetector:
    """Periodic clustering snapshots + distance thresholding.

    Drive it with :meth:`step`, as often as convenient — it gates
    itself on ``params.interval_s`` of simulated time, so the dense
    round loop can call it every round and the event loop on a
    heartbeat, with identical results.
    """

    def __init__(
        self,
        service,
        nodes: Sequence[str],
        params: ChangeDetectorParams = ChangeDetectorParams(),
        obs: Optional[Observability] = None,
    ) -> None:
        self.service = service
        self.nodes = list(nodes)
        self.params = params
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        self._metrics = obs.metrics
        self._next_due = params.interval_s
        self._previous: Optional[ClusterSnapshot] = None
        self._last_detection_at: Optional[float] = None
        self._last_entry_at: Optional[float] = None
        self._above_streak = 0
        # Welford accumulator over quiet (non-elevated) distances: the
        # self-calibrating baseline the sigma rule compares against.
        self._baseline_n = 0
        self._baseline_mean = 0.0
        self._baseline_m2 = 0.0
        self.snapshots_taken = 0
        self.signals: List[ChangeSignal] = []
        self.detections: List[ChangeSignal] = []

    def baseline(self) -> Tuple[int, float, float]:
        """The quiet-churn baseline: (count, mean, stddev)."""
        if self._baseline_n < 2:
            return self._baseline_n, self._baseline_mean, 0.0
        variance = self._baseline_m2 / (self._baseline_n - 1)
        return self._baseline_n, self._baseline_mean, math.sqrt(variance)

    def _entry_elevated(self, distance: float) -> bool:
        """Full-strength elevation: the absolute cap or the sigma rule."""
        if distance > self.params.threshold:
            return True
        if self.params.sigma is None:
            return False
        count, mean, std = self.baseline()
        if count < self.params.baseline_min:
            return False
        return distance > mean + self.params.sigma * std

    def _continuation_elevated(self, distance: float, now: float) -> bool:
        """Relaxed elevation while an entry-grade change is unfolding.

        Anchored at the last *entry-grade* comparison, never at a
        continuation-grade one: a chain of relaxed flags cannot keep
        itself alive once the full-strength signal fades.
        """
        if (
            self.params.continuation_sigma is None
            or self.params.sigma is None
            or self._last_entry_at is None
            or now - self._last_entry_at > self.params.continuation_window_s
        ):
            return False
        count, mean, std = self.baseline()
        if count < self.params.baseline_min:
            return False
        return distance > mean + self.params.continuation_sigma * std

    def _absorb(self, distance: float) -> None:
        self._baseline_n += 1
        delta = distance - self._baseline_mean
        self._baseline_mean += delta / self._baseline_n
        self._baseline_m2 += delta * (distance - self._baseline_mean)

    def counters(self) -> Dict[str, int]:
        """Flat counters for export (resilience snapshots)."""
        return {
            "snapshots": self.snapshots_taken,
            "comparisons": len(self.signals),
            "detections": len(self.detections),
        }

    def _snapshot(self, now: float) -> Optional[ClusterSnapshot]:
        maps = self.service.ratio_maps(
            self.nodes, window_probes=self.params.window_probes
        )
        positioned = sum(1 for m in maps.values() if m is not None)
        if positioned < self.params.min_positioned:
            return None
        result = self.service.cluster(
            self.nodes,
            smf_params=SmfParams(metric=self.service.params.metric),
            window_probes=self.params.window_probes,
        )
        clusters: List[Tuple[Dict[str, float], frozenset]] = []
        assignment: Dict[str, Optional[int]] = {}
        for index, cluster in enumerate(result.clusters):
            centroid: Dict[str, float] = {}
            counted = 0
            for member in cluster.members:
                member_map = maps.get(member)
                if member_map is None:
                    continue
                counted += 1
                for address, ratio in member_map.items():
                    centroid[address] = centroid.get(address, 0.0) + ratio
            if counted:
                centroid = {a: v / counted for a, v in centroid.items()}
            clusters.append((centroid, frozenset(cluster.members)))
            for member in cluster.members:
                assignment[member] = index
        for node in result.unclustered:
            assignment[node] = None
        self.snapshots_taken += 1
        return ClusterSnapshot(
            at=now, clusters=tuple(clusters), assignment=assignment
        )

    def step(self, now: float) -> Optional[ChangeSignal]:
        """Take a snapshot if one is due; compare; maybe flag change.

        Returns the comparison signal when a snapshot was both due and
        comparable (a previous snapshot existed), else ``None``.
        """
        if now < self._next_due:
            return None
        while self._next_due <= now:
            self._next_due += self.params.interval_s
        snapshot = self._snapshot(now)
        if snapshot is None:
            return None
        previous, self._previous = self._previous, snapshot
        if previous is None:
            return None
        distance, centroid_shift, constituency_shift = snapshot_distance(
            previous, snapshot, self.params.centroid_weight
        )
        self._metrics.gauge("remap.snapshot_distance").set(distance)
        entry = self._entry_elevated(distance)
        if entry:
            # Refresh the continuation anchor on every entry-grade
            # comparison, flagged or not: the change is demonstrably
            # still unfolding even when the cooldown mutes the flag.
            self._last_entry_at = now
        if entry or self._continuation_elevated(distance, now):
            self._above_streak += 1
        else:
            self._above_streak = 0
            # Only quiet comparisons feed the baseline: an elevated
            # one is (suspected) change, not churn, even when the
            # cooldown or streak rule keeps it from flagging.
            self._absorb(distance)
        cooled = (
            self._last_detection_at is None
            or now - self._last_detection_at >= self.params.cooldown_s
        )
        flagged = self._above_streak >= self.params.consecutive and cooled
        signal = ChangeSignal(
            at=now,
            previous_at=previous.at,
            distance=distance,
            centroid_shift=centroid_shift,
            constituency_shift=constituency_shift,
            flagged=flagged,
        )
        self.signals.append(signal)
        if flagged:
            self._last_detection_at = now
            self._above_streak = 0
            self.detections.append(signal)
            self._metrics.counter("remap.detections").inc()
            self._trace.emit(
                "remap.detected",
                now,
                "change-detector",
                distance=distance,
                centroid_shift=centroid_shift,
                constituency_shift=constituency_shift,
                previous_at=previous.at,
            )
        return signal
