"""Strongest-Mappings-First (SMF) clustering (Section V-B).

The paper's algorithm, quoted:

    "we initially define the cluster centers as those with the
    strongest mappings to replica servers.  Once the cluster centers
    have been set, the algorithm picks an unclustered node and finds
    its cosine similarity to each cluster center.  The node is assigned
    to the cluster whose center produces the largest cosine similarity,
    if that value is greater than a threshold t.  Otherwise, the node
    is assigned to its own cluster.

    This algorithm can result in a significant number of clusters of
    size one, i.e., unclustered nodes.  Thus, in an optional second
    pass of the algorithm, we select unclustered nodes at random to be
    cluster centers and determine if any of the other unclustered nodes
    belong to the cluster based on the cosine-similarity metric."

Our reading of "strongest mappings to replica servers": for every
replica server seen by anyone, the node with the highest ratio toward
it anchors that replica's neighbourhood — deduplicated, those nodes are
the initial centers.  (A node maximally committed to a replica is the
best available proxy for "at that replica's location".)  A
``CenterPolicy.RANDOM`` alternative exists because the authors say they
compared center-selection approaches before settling on SMF; the
ablation bench reproduces that comparison.

Clusters of size one are *unclustered* nodes: Table I's "# nodes
clustered" and "# of clusters" count only clusters with at least two
members, which is how the percentages in the paper add up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric, similarity


class CenterPolicy(str, Enum):
    """How the first pass chooses cluster centers."""

    #: The paper's choice: per-replica strongest mappers.
    STRONGEST = "strongest"
    #: Random centers (the baseline the authors compared against).
    RANDOM = "random"


@dataclass(frozen=True)
class SmfParams:
    """Tunables of the SMF algorithm."""

    #: Minimum cosine similarity to join a cluster (the paper's ``t``;
    #: Table I sweeps {0.01, 0.1, 0.5} and the evaluation uses 0.1).
    threshold: float = 0.1
    #: Run the optional second pass over unclustered nodes.
    second_pass: bool = True
    #: First-pass center selection.
    center_policy: CenterPolicy = CenterPolicy.STRONGEST
    #: Similarity metric (cosine in the paper).
    metric: SimilarityMetric = SimilarityMetric.COSINE
    #: Seed for the randomised steps (second pass, random centers).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")


@dataclass
class Cluster:
    """One cluster: a center node and its members (center included)."""

    center: str
    members: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.center not in self.members:
            self.members.insert(0, self.center)

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class ClusteringResult:
    """The outcome of one clustering run.

    Also used by non-SMF baselines (ASN clustering), which set
    ``params`` to ``None``.
    """

    clusters: List[Cluster]
    unclustered: List[str]
    params: Optional[SmfParams]
    total_nodes: int

    @property
    def clustered_count(self) -> int:
        """Number of nodes that landed in a (size ≥ 2) cluster."""
        return sum(c.size for c in self.clusters)

    @property
    def clustered_fraction(self) -> float:
        """Fraction of input nodes clustered (Table I's percentage)."""
        if self.total_nodes == 0:
            return 0.0
        return self.clustered_count / self.total_nodes

    def sizes(self) -> List[int]:
        """Cluster sizes, largest first."""
        return sorted((c.size for c in self.clusters), reverse=True)

    def summary(self) -> Dict[str, float]:
        """Table I's row: counts plus mean/median/max cluster size."""
        sizes = self.sizes()
        if sizes:
            mean = sum(sizes) / len(sizes)
            median = float(np.median(sizes))
            largest = max(sizes)
        else:
            mean = median = largest = 0.0
        return {
            "nodes_clustered": self.clustered_count,
            "pct_clustered": 100.0 * self.clustered_fraction,
            "num_clusters": len(self.clusters),
            "mean_size": mean,
            "median_size": median,
            "max_size": largest,
        }

    def cluster_of(self, node: str) -> Optional[Cluster]:
        """The cluster containing a node, or None if unclustered."""
        for cluster in self.clusters:
            if node in cluster.members:
                return cluster
        return None


def _strongest_centers(maps: Mapping[str, RatioMap]) -> List[str]:
    """The paper's "strongest mappings" center set, strongest first.

    A node anchors a cluster when it is the strongest mapper of its own
    primary replica: among all nodes whose redirections favour replica
    ``r`` the most, the one most committed to ``r`` is the best
    available proxy for "a node at r's location".  This keeps the
    center set selective (at most one center per primary replica), so
    the first pass assigns ordinary nodes to strong anchors and the
    optional second pass has real work left (exactly the structure the
    paper describes).
    """
    best_for_replica: Dict[str, Tuple[float, str]] = {}
    primary: Dict[str, Tuple[str, float]] = {}
    for node, ratio_map in maps.items():
        replica, ratio = ratio_map.strongest()
        primary[node] = (replica, ratio)
        incumbent = best_for_replica.get(replica)
        # Ties break toward the lexicographically smaller node name.
        if (
            incumbent is None
            or ratio > incumbent[0]
            or (ratio == incumbent[0] and node < incumbent[1])
        ):
            best_for_replica[replica] = (ratio, node)
    centers = [
        node
        for node, (replica, ratio) in primary.items()
        if best_for_replica[replica][1] == node
    ]
    return sorted(centers, key=lambda n: (-primary[n][1], n))


def smf_cluster(
    maps: Mapping[str, RatioMap],
    params: SmfParams = SmfParams(),
) -> ClusteringResult:
    """Run Strongest-Mappings-First clustering over node ratio maps.

    ``maps`` holds one ratio map per node; nodes whose map is ``None``
    are treated as unclustered from the start (no position yet).
    """
    known: Dict[str, RatioMap] = {n: m for n, m in maps.items() if m is not None}
    no_position = [n for n, m in maps.items() if m is None]
    rng = np.random.default_rng(params.seed)

    if params.center_policy is CenterPolicy.STRONGEST:
        centers = _strongest_centers(known)
    else:
        centers = sorted(known)
        rng.shuffle(centers)
        # Random policy: the same number of centers SMF would pick,
        # drawn uniformly — the comparison the authors describe.
        centers = centers[: max(1, len(_strongest_centers(known)))] if known else []

    center_set = set(centers)
    clusters: Dict[str, Cluster] = {c: Cluster(center=c) for c in centers}

    # First pass: attach every non-center node to its best center.
    leftover: List[str] = []
    for node in sorted(known):
        if node in center_set:
            continue
        node_map = known[node]
        best_center, best_score = None, 0.0
        for center in centers:
            score = similarity(node_map, known[center], params.metric)
            if score > best_score or (score == best_score and best_center is None):
                best_center, best_score = center, score
        if best_center is not None and best_score > params.threshold:
            clusters[best_center].members.append(node)
        else:
            leftover.append(node)

    # Optional second pass: grow clusters among the unclustered, which
    # includes first-pass centers that attracted nobody (clusters of
    # size one are unclustered nodes, per the paper).
    lonely_centers = [c for c, cluster in clusters.items() if cluster.size < 2]
    for center in lonely_centers:
        del clusters[center]
    leftover.extend(lonely_centers)
    if params.second_pass and leftover:
        # A lonely center was never itself compared against the other
        # centers in the first pass; give each unclustered node one
        # chance to join a formed cluster before seeding new ones.
        formed = [c for c, cluster in clusters.items() if cluster.size >= 2]
        still_left = []
        for node in sorted(leftover):
            best_center, best_score = None, 0.0
            for center in formed:
                score = similarity(known[node], known[center], params.metric)
                if score > best_score:
                    best_center, best_score = center, score
            if best_center is not None and best_score > params.threshold:
                clusters[best_center].members.append(node)
            else:
                still_left.append(node)
        leftover = still_left
    if params.second_pass and leftover:
        pool = list(leftover)
        rng.shuffle(pool)
        leftover = []
        while pool:
            center = pool.pop(0)
            cluster = Cluster(center=center)
            remaining = []
            for node in pool:
                score = similarity(known[node], known[center], params.metric)
                if score > params.threshold:
                    cluster.members.append(node)
                else:
                    remaining.append(node)
            pool = remaining
            if cluster.size >= 2:
                clusters[center] = cluster
            else:
                leftover.append(center)

    real_clusters = [c for c in clusters.values() if c.size >= 2]
    singles = [c.center for c in clusters.values() if c.size < 2]
    unclustered = sorted(singles + leftover + no_position)
    real_clusters.sort(key=lambda c: (-c.size, c.center))
    return ClusteringResult(
        clusters=real_clusters,
        unclustered=unclustered,
        params=params,
        total_nodes=len(maps),
    )
