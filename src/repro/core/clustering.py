"""Strongest-Mappings-First (SMF) clustering (Section V-B).

The paper's algorithm, quoted:

    "we initially define the cluster centers as those with the
    strongest mappings to replica servers.  Once the cluster centers
    have been set, the algorithm picks an unclustered node and finds
    its cosine similarity to each cluster center.  The node is assigned
    to the cluster whose center produces the largest cosine similarity,
    if that value is greater than a threshold t.  Otherwise, the node
    is assigned to its own cluster.

    This algorithm can result in a significant number of clusters of
    size one, i.e., unclustered nodes.  Thus, in an optional second
    pass of the algorithm, we select unclustered nodes at random to be
    cluster centers and determine if any of the other unclustered nodes
    belong to the cluster based on the cosine-similarity metric."

Our reading of "strongest mappings to replica servers": for every
replica server seen by anyone, the node with the highest ratio toward
it anchors that replica's neighbourhood — deduplicated, those nodes are
the initial centers.  (A node maximally committed to a replica is the
best available proxy for "at that replica's location".)  A
``CenterPolicy.RANDOM`` alternative exists because the authors say they
compared center-selection approaches before settling on SMF; the
ablation bench reproduces that comparison.

Clusters of size one are *unclustered* nodes: Table I's "# nodes
clustered" and "# of clusters" count only clusters with at least two
members, which is how the percentages in the paper add up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import PackedPopulation, packed_for
from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric, similarity


class CenterPolicy(str, Enum):
    """How the first pass chooses cluster centers."""

    #: The paper's choice: per-replica strongest mappers.
    STRONGEST = "strongest"
    #: Random centers (the baseline the authors compared against).
    RANDOM = "random"


@dataclass(frozen=True)
class SmfParams:
    """Tunables of the SMF algorithm."""

    #: Minimum cosine similarity to join a cluster (the paper's ``t``;
    #: Table I sweeps {0.01, 0.1, 0.5} and the evaluation uses 0.1).
    threshold: float = 0.1
    #: Run the optional second pass over unclustered nodes.
    second_pass: bool = True
    #: First-pass center selection.
    center_policy: CenterPolicy = CenterPolicy.STRONGEST
    #: Similarity metric (cosine in the paper).
    metric: SimilarityMetric = SimilarityMetric.COSINE
    #: Seed for the randomised steps (second pass, random centers).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")


@dataclass
class Cluster:
    """One cluster: a center node and its members (center included)."""

    center: str
    members: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.center not in self.members:
            self.members.insert(0, self.center)

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class ClusteringResult:
    """The outcome of one clustering run.

    Also used by non-SMF baselines (ASN clustering), which set
    ``params`` to ``None``.
    """

    clusters: List[Cluster]
    unclustered: List[str]
    params: Optional[SmfParams]
    total_nodes: int
    #: Lazy member → cluster index behind :meth:`cluster_of`; built on
    #: first lookup, after which lookups are O(1).  Not part of the
    #: result's value (excluded from equality/repr).
    _member_index: Optional[Dict[str, Cluster]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def clustered_count(self) -> int:
        """Number of nodes that landed in a (size ≥ 2) cluster."""
        return sum(c.size for c in self.clusters)

    @property
    def clustered_fraction(self) -> float:
        """Fraction of input nodes clustered (Table I's percentage)."""
        if self.total_nodes == 0:
            return 0.0
        return self.clustered_count / self.total_nodes

    def sizes(self) -> List[int]:
        """Cluster sizes, largest first."""
        return sorted((c.size for c in self.clusters), reverse=True)

    def summary(self) -> Dict[str, float]:
        """Table I's row: counts plus mean/median/max cluster size."""
        sizes = self.sizes()
        if sizes:
            mean = sum(sizes) / len(sizes)
            median = float(np.median(sizes))
            largest = max(sizes)
        else:
            mean = median = largest = 0.0
        return {
            "nodes_clustered": self.clustered_count,
            "pct_clustered": 100.0 * self.clustered_fraction,
            "num_clusters": len(self.clusters),
            "mean_size": mean,
            "median_size": median,
            "max_size": largest,
        }

    def cluster_of(self, node: str) -> Optional[Cluster]:
        """The cluster containing a node, or None if unclustered.

        O(1) after the first call: a member → cluster index is built
        lazily and reused.  (Mutating ``clusters`` afterwards is not
        supported — results are meant to be read-only.)
        """
        if self._member_index is None:
            self._member_index = {
                member: cluster
                for cluster in self.clusters
                for member in cluster.members
            }
        return self._member_index.get(node)


def _strongest_centers(maps: Mapping[str, RatioMap]) -> List[str]:
    """The paper's "strongest mappings" center set, strongest first.

    A node anchors a cluster when it is the strongest mapper of its own
    primary replica: among all nodes whose redirections favour replica
    ``r`` the most, the one most committed to ``r`` is the best
    available proxy for "a node at r's location".  This keeps the
    center set selective (at most one center per primary replica), so
    the first pass assigns ordinary nodes to strong anchors and the
    optional second pass has real work left (exactly the structure the
    paper describes).
    """
    best_for_replica: Dict[str, Tuple[float, str]] = {}
    primary: Dict[str, Tuple[str, float]] = {}
    for node, ratio_map in maps.items():
        replica, ratio = ratio_map.strongest()
        primary[node] = (replica, ratio)
        incumbent = best_for_replica.get(replica)
        # Ties break toward the lexicographically smaller node name.
        if (
            incumbent is None
            or ratio > incumbent[0]
            or (ratio == incumbent[0] and node < incumbent[1])
        ):
            best_for_replica[replica] = (ratio, node)
    centers = [
        node
        for node, (replica, ratio) in primary.items()
        if best_for_replica[replica][1] == node
    ]
    return sorted(centers, key=lambda n: (-primary[n][1], n))


def _best_rows(
    nodes: Sequence[str],
    centers: Sequence[str],
    known: Mapping[str, RatioMap],
    metric: SimilarityMetric,
    population: Optional[PackedPopulation],
) -> List[Tuple[int, float]]:
    """Per node, the first index of the maximum-similarity center and
    that score — the shared primitive of SMF's first two passes.

    Vectorized this is one blocked matrix product + a row-wise argmax
    (``np.argmax`` returns the *first* maximum, matching the scalar
    loops' strictly-greater update rule); the scalar fallback is the
    reference double loop.
    """
    if population is not None:
        matrix = population.matrix(nodes, centers, metric)
        best = np.argmax(matrix, axis=1)
        scores = matrix[np.arange(len(nodes)), best]
        return list(zip(best.tolist(), scores.tolist()))
    out: List[Tuple[int, float]] = []
    for node in nodes:
        node_map = known[node]
        best_index, best_score = 0, 0.0
        for index, center in enumerate(centers):
            score = similarity(node_map, known[center], metric)
            if score > best_score:
                best_index, best_score = index, score
        out.append((best_index, best_score))
    return out


def smf_cluster(
    maps: Mapping[str, RatioMap],
    params: SmfParams = SmfParams(),
    *,
    vectorized: bool = True,
) -> ClusteringResult:
    """Run Strongest-Mappings-First clustering over node ratio maps.

    ``maps`` holds one ratio map per node; nodes whose map is ``None``
    are treated as unclustered from the start (no position yet).

    ``vectorized`` routes the node × center similarity of every pass
    through the packed-population engine (blocked matrix products)
    instead of nested scalar loops; the output is identical either way
    — same thresholds, same tie-breaks, same randomised steps.
    """
    known: Dict[str, RatioMap] = {n: m for n, m in maps.items() if m is not None}
    no_position = [n for n, m in maps.items() if m is None]
    rng = np.random.default_rng(params.seed)

    if params.center_policy is CenterPolicy.STRONGEST:
        centers = _strongest_centers(known)
    else:
        centers = sorted(known)
        rng.shuffle(centers)
        # Random policy: the same number of centers SMF would pick,
        # drawn uniformly — the comparison the authors describe.
        centers = centers[: max(1, len(_strongest_centers(known)))] if known else []

    population = packed_for(known) if (vectorized and known) else None
    center_set = set(centers)
    clusters: Dict[str, Cluster] = {c: Cluster(center=c) for c in centers}

    # First pass: attach every non-center node to its best center.
    leftover: List[str] = []
    ordinary = [n for n in sorted(known) if n not in center_set]
    if centers and ordinary:
        for node, (index, score) in zip(
            ordinary, _best_rows(ordinary, centers, known, params.metric, population)
        ):
            if score > params.threshold:
                clusters[centers[index]].members.append(node)
            else:
                leftover.append(node)
    else:
        leftover.extend(ordinary)

    # Optional second pass: grow clusters among the unclustered, which
    # includes first-pass centers that attracted nobody (clusters of
    # size one are unclustered nodes, per the paper).
    lonely_centers = [c for c, cluster in clusters.items() if cluster.size < 2]
    for center in lonely_centers:
        del clusters[center]
    leftover.extend(lonely_centers)
    if params.second_pass and leftover:
        # A lonely center was never itself compared against the other
        # centers in the first pass; give each unclustered node one
        # chance to join a formed cluster before seeding new ones.
        formed = [c for c, cluster in clusters.items() if cluster.size >= 2]
        still_left = []
        ordered = sorted(leftover)
        if formed:
            for node, (index, score) in zip(
                ordered, _best_rows(ordered, formed, known, params.metric, population)
            ):
                if score > params.threshold:
                    clusters[formed[index]].members.append(node)
                else:
                    still_left.append(node)
        else:
            still_left = ordered
        leftover = still_left
    if params.second_pass and leftover:
        pool = list(leftover)
        rng.shuffle(pool)
        leftover = []
        while pool:
            center = pool.pop(0)
            cluster = Cluster(center=center)
            if population is not None:
                scores = population.matrix(pool, [center], params.metric)[:, 0]
                joined = scores > params.threshold
                cluster.members.extend(n for n, hit in zip(pool, joined) if hit)
                pool = [n for n, hit in zip(pool, joined) if not hit]
            else:
                remaining = []
                for node in pool:
                    score = similarity(known[node], known[center], params.metric)
                    if score > params.threshold:
                        cluster.members.append(node)
                    else:
                        remaining.append(node)
                pool = remaining
            if cluster.size >= 2:
                clusters[center] = cluster
            else:
                leftover.append(center)

    real_clusters = [c for c in clusters.values() if c.size >= 2]
    singles = [c.center for c in clusters.values() if c.size < 2]
    unclustered = sorted(singles + leftover + no_position)
    real_clusters.sort(key=lambda c: (-c.size, c.center))
    return ClusteringResult(
        clusters=real_clusters,
        unclustered=unclustered,
        params=params,
        total_nodes=len(maps),
    )
