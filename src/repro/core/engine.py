"""Vectorized similarity engine: batched ratio-map comparisons.

Every CRP operation — closest-node ranking (Section IV-A), SMF
clustering (Section IV-B), quality scoring — reduces to similarity
between ratio maps.  The scalar :func:`repro.core.similarity.similarity`
API stays as the reference implementation; this module is the scaling
primitive behind it: a shared replica *vocabulary* (string → column
interner) plus a CSR-style sparse packing of a whole population's
ratio maps into flat numpy arrays, with cached norms, so that

* one positioning query is a single sparse matvec over all candidates
  (:meth:`PackedPopulation.scores`),
* clustering's node × center comparisons are blocked matrix products
  (:meth:`PackedPopulation.matrix`), and
* node churn is an incremental :meth:`~PackedPopulation.add` /
  :meth:`~PackedPopulation.remove` — tombstoned and repacked lazily, so
  :class:`~repro.core.tracker.RedirectionTracker`-driven windows don't
  force a full repack per update.

All three metrics (cosine, Jaccard, overlap) have vectorized
equivalents so the ablation benches keep working.  Results agree with
the scalar reference to within float summation-order noise (≤ 1e-12 in
practice; Jaccard is bit-exact), and every tie-break is replicated
exactly, so rankings and clusterings are identical under both paths.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric
from repro.obs import Observability, get_observability
from repro.obs.manifest import SIM_NOW_GAUGE

#: Upper bound on the temporary (cols × nnz) expansion used by blocked
#: matrix products, in elements (~32 MB of float64).
_BLOCK_ELEMENTS = 4_194_304

#: How many packed populations :func:`packed_for` keeps warm.
_PACK_CACHE_SIZE = 8

#: Per-map (vocabulary, columns, ratios) cache entries kept on
#: ``RatioMap._vec`` — one per recently-seen vocabulary.
_MAP_VEC_SLOTS = 4


class ReplicaVocabulary:
    """Interner mapping replica identifiers to dense column indices.

    Indices are assigned in first-seen order and never change or get
    reused, so packed rows stay valid as the vocabulary grows — the
    property that makes incremental adds cheap.
    """

    __slots__ = ("_index",)

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, replica: str) -> bool:
        return replica in self._index

    def intern(self, replica: str) -> int:
        """The column for a replica, assigning the next free one if new."""
        index = self._index.get(replica)
        if index is None:
            index = len(self._index)
            self._index[replica] = index
        return index

    def get(self, replica: str) -> Optional[int]:
        """The column for a replica, or None if never interned."""
        return self._index.get(replica)

    def replicas(self) -> Tuple[str, ...]:
        """All interned replicas, in column order (the inverse map)."""
        out: List[Optional[str]] = [None] * len(self._index)
        for replica, index in self._index.items():
            out[index] = replica
        return tuple(out)  # type: ignore[arg-type]

    def columns_of(self, ratio_map: RatioMap) -> np.ndarray:
        """Column indices for a map's replicas (interning new ones),
        in the map's own iteration order."""
        intern = self.intern
        return np.fromiter(
            (intern(r) for r in ratio_map), dtype=np.int64, count=len(ratio_map)
        )


def _map_arrays(
    ratio_map: RatioMap, vocab: ReplicaVocabulary
) -> Tuple[np.ndarray, np.ndarray]:
    """A map's (columns, ratios) arrays under a vocabulary, cached on
    the map itself (ratio maps are immutable, so the cache never goes
    stale; it is keyed by vocabulary identity).

    ``_vec`` is a short move-to-front list holding one entry per
    recently-seen vocabulary, so a map shared between populations with
    different vocabularies (a scenario sweep and a shard-local serving
    population, say) does not re-derive its arrays on every
    alternation.
    """
    cached = getattr(ratio_map, "_vec", None)
    if cached is not None:
        for slot, entry in enumerate(cached):
            if entry[0] is vocab:
                if slot:
                    cached.insert(0, cached.pop(slot))
                return entry[1], entry[2]
    columns = vocab.columns_of(ratio_map)
    ratios = np.fromiter(ratio_map.values(), dtype=np.float64, count=len(ratio_map))
    entry = (vocab, columns, ratios)
    if cached is None:
        ratio_map._vec = [entry]
    else:
        cached.insert(0, entry)
        del cached[_MAP_VEC_SLOTS:]
    return columns, ratios


def _segment_gather(
    starts: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat gather indices for arbitrary CSR row segments.

    Returns ``(flat, offsets)`` where ``flat`` indexes the store arrays
    element-by-element for the selected rows (in order) and ``offsets``
    is the per-row boundary array (len(rows)+1).
    """
    total = int(counts.sum())
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets
    flat = np.ones(total, dtype=np.int64)
    flat[0] = starts[0]
    if len(counts) > 1:
        flat[offsets[1:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    np.cumsum(flat, out=flat)
    return flat, offsets


class _View:
    """A packed, active-rows-only snapshot of a population.

    Rebuilt lazily after mutations; when there are no tombstones it
    aliases the store arrays (no copy).
    """

    __slots__ = (
        "names",
        "maps",
        "indices",
        "data",
        "indptr",
        "lens",
        "norms",
        "row_of",
        "_names_arr",
        "_name_perm",
    )

    def __init__(
        self,
        names: List[str],
        maps: List[RatioMap],
        indices: np.ndarray,
        data: np.ndarray,
        indptr: np.ndarray,
    ) -> None:
        self.names = names
        self.maps = maps
        self.indices = indices
        self.data = data
        self.indptr = indptr
        self.lens = np.diff(indptr)
        self.norms = np.fromiter((m.norm for m in maps), dtype=np.float64, count=len(maps))
        self.row_of = {name: i for i, name in enumerate(names)}
        self._names_arr: Optional[np.ndarray] = None
        self._name_perm: Optional[np.ndarray] = None

    @property
    def names_arr(self) -> np.ndarray:
        if self._names_arr is None:
            self._names_arr = np.array(self.names)
        return self._names_arr

    @property
    def name_perm(self) -> np.ndarray:
        """Row indices in ascending-name order (the tie-break order)."""
        if self._name_perm is None:
            self._name_perm = np.argsort(self.names_arr, kind="stable")
        return self._name_perm


class PackedPopulation:
    """A population of named ratio maps packed into CSR arrays.

    Row order is insertion order.  ``add``/``remove`` are incremental:
    additions are appended to the store, removals tombstone their row,
    and the packed active view is rebuilt lazily on the next query; the
    store itself is only compacted once tombstones outnumber live rows.
    """

    def __init__(
        self,
        maps: Optional[Mapping[str, Optional[RatioMap]]] = None,
        *,
        vocab: Optional[ReplicaVocabulary] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.vocab = vocab if vocab is not None else ReplicaVocabulary()
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        metrics = obs.metrics
        self._m_flushes = metrics.counter("engine.flushes")
        self._m_compactions = metrics.counter("engine.compactions")
        self._m_rows_flushed = metrics.counter("engine.rows_flushed")
        self._m_rows_dropped = metrics.counter("engine.rows_dropped")
        #: The engine has no clock of its own; trace timestamps read the
        #: sim-time gauge the active :class:`SimClock` keeps current.
        self._sim_now = metrics.gauge(SIM_NOW_GAUGE)
        self._names: List[str] = []
        self._maps: List[Optional[RatioMap]] = []
        self._row_of: Dict[str, int] = {}
        self._indices = np.empty(0, dtype=np.int64)
        self._data = np.empty(0, dtype=np.float64)
        self._indptr = np.zeros(1, dtype=np.int64)
        self._packed_rows = 0
        self._dead = 0
        self._view: Optional[_View] = None
        #: Per-query memo slot for higher layers (the ranking path
        #: stores finished result lists here, keyed by query identity).
        #: Cleared on any membership change.  Bounded by the layer that
        #: fills it.
        self.memo: "OrderedDict[object, tuple]" = OrderedDict()
        #: Membership listeners (see :meth:`attach_listener`) — how the
        #: ANN sketch index (repro.core.ann) tracks churn without
        #: rebuilding.
        self._listeners: List[object] = []
        if maps:
            for name, ratio_map in maps.items():
                if ratio_map is not None:
                    self.add(name, ratio_map)

    # -- membership ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, name: str) -> bool:
        return name in self._row_of

    @property
    def names(self) -> List[str]:
        """Active node names, in row order."""
        return self._ensure_view().names

    def get(self, name: str) -> RatioMap:
        """The packed map for a node (KeyError if absent)."""
        return self._maps[self._row_of[name]]

    def add(self, name: str, ratio_map: RatioMap) -> None:
        """Append a node (ValueError if the name is already present)."""
        if name in self._row_of:
            raise ValueError(f"node {name!r} already packed; remove it first")
        if ratio_map is None:
            raise ValueError(f"node {name!r} has no ratio map")
        self._row_of[name] = len(self._names)
        self._names.append(name)
        self._maps.append(ratio_map)
        self._view = None
        self.memo.clear()
        for listener in self._listeners:
            listener.on_add(name, ratio_map)

    def remove(self, name: str) -> None:
        """Tombstone a node (KeyError if absent); storage is reclaimed
        lazily once tombstones outnumber live rows."""
        row = self._row_of.pop(name)
        self._maps[row] = None
        self._dead += 1
        self._view = None
        self.memo.clear()
        for listener in self._listeners:
            listener.on_remove(name)

    def attach_listener(self, listener: object) -> None:
        """Register an object to be notified of membership changes —
        ``on_add(name, ratio_map)`` after each :meth:`add` and
        ``on_remove(name)`` after each :meth:`remove` (an
        :meth:`update` fires both).  Listeners see every change from
        attachment on, so a derived structure built from the current
        view stays in sync without rebuilds."""
        self._listeners.append(listener)

    def update(self, name: str, ratio_map: RatioMap) -> None:
        """Replace a node's map (the node moves to the last row)."""
        if name in self._row_of:
            self.remove(name)
        self.add(name, ratio_map)

    def stats(self) -> Dict[str, int]:
        """Storage counters (the serving layer's STATS surface).

        ``rows`` is live membership; ``tombstones`` and ``packed_rows``
        expose the lazy-reclaim state; ``nnz`` is stored entries
        including tombstoned rows not yet compacted away.
        """
        return {
            "rows": len(self._row_of),
            "tombstones": self._dead,
            "packed_rows": self._packed_rows,
            "nnz": int(self._indptr[-1]),
            "vocabulary": len(self.vocab),
        }

    # -- packing ------------------------------------------------------------

    def _flush_pending(self) -> None:
        """Pack rows appended since the last flush into the store."""
        if self._packed_rows == len(self._names):
            return
        pending = self._maps[self._packed_rows :]
        self._m_flushes.inc()
        self._m_rows_flushed.inc(len(pending))
        self._trace.emit(
            "engine.flush", self._sim_now.value, "packed-population",
            rows=len(pending),
        )
        chunks_idx: List[np.ndarray] = [self._indices]
        chunks_dat: List[np.ndarray] = [self._data]
        lens = np.zeros(len(pending), dtype=np.int64)
        for i, ratio_map in enumerate(pending):
            if ratio_map is None:  # added then removed before any query
                continue
            columns, ratios = _map_arrays(ratio_map, self.vocab)
            chunks_idx.append(columns)
            chunks_dat.append(ratios)
            lens[i] = len(columns)
        self._indices = np.concatenate(chunks_idx)
        self._data = np.concatenate(chunks_dat)
        tail = np.empty(len(pending), dtype=np.int64)
        np.cumsum(lens, out=tail)
        tail += self._indptr[-1]
        self._indptr = np.concatenate([self._indptr, tail])
        self._packed_rows = len(self._names)

    def _compact(self) -> None:
        """Drop tombstoned rows from the store for good."""
        self._flush_pending()
        self._m_compactions.inc()
        self._m_rows_dropped.inc(self._dead)
        self._trace.emit(
            "engine.compact", self._sim_now.value, "packed-population",
            dropped=self._dead, live=len(self._row_of),
        )
        alive = [i for i, m in enumerate(self._maps) if m is not None]
        rows = np.asarray(alive, dtype=np.int64)
        if len(rows):
            flat, offsets = _segment_gather(self._indptr[rows], np.diff(self._indptr)[rows])
            self._indices = self._indices[flat]
            self._data = self._data[flat]
            self._indptr = offsets
        else:
            self._indices = np.empty(0, dtype=np.int64)
            self._data = np.empty(0, dtype=np.float64)
            self._indptr = np.zeros(1, dtype=np.int64)
        self._names = [self._names[i] for i in alive]
        self._maps = [self._maps[i] for i in alive]
        self._row_of = {name: i for i, name in enumerate(self._names)}
        self._packed_rows = len(self._names)
        self._dead = 0

    def _ensure_view(self) -> _View:
        if self._view is not None:
            return self._view
        if self._dead > len(self._row_of):
            self._compact()
        else:
            self._flush_pending()
        if self._dead == 0:
            view = _View(self._names, self._maps, self._indices, self._data, self._indptr)
        else:
            alive = [i for i, m in enumerate(self._maps) if m is not None]
            rows = np.asarray(alive, dtype=np.int64)
            flat, offsets = _segment_gather(
                self._indptr[rows], np.diff(self._indptr)[rows]
            )
            view = _View(
                [self._names[i] for i in alive],
                [self._maps[i] for i in alive],
                self._indices[flat],
                self._data[flat],
                offsets,
            )
        self._view = view
        return view

    # -- similarity ---------------------------------------------------------

    def _query_dense(self, query: RatioMap) -> Tuple[np.ndarray, float]:
        """The query as a dense vector over the vocabulary."""
        columns, ratios = _map_arrays(query, self.vocab)
        dense = np.zeros(len(self.vocab), dtype=np.float64)
        dense[columns] = ratios
        return dense, query.norm

    def scores(
        self,
        query: RatioMap,
        metric: SimilarityMetric = SimilarityMetric.COSINE,
    ) -> np.ndarray:
        """One-vs-many similarity: the query against every active row.

        Returns an array aligned with :attr:`names`.  One sparse matvec
        (cosine/overlap) or masked count (Jaccard) — no Python loops.
        """
        view = self._ensure_view()
        n = len(view.names)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        boundaries = view.indptr[:-1]
        if metric is SimilarityMetric.COSINE:
            dense, query_norm = self._query_dense(query)
            dots = np.add.reduceat(view.data * dense[view.indices], boundaries)
            result = dots / (query_norm * view.norms)
            np.clip(result, 0.0, 1.0, out=result)
            return result
        if metric is SimilarityMetric.JACCARD:
            dense, _ = self._query_dense(query)
            common = np.add.reduceat(
                (dense[view.indices] > 0.0).astype(np.float64), boundaries
            )
            union = view.lens + float(len(query)) - common
            return common / union
        if metric is SimilarityMetric.OVERLAP:
            dense, _ = self._query_dense(query)
            return np.add.reduceat(
                np.minimum(view.data, dense[view.indices]), boundaries
            )
        raise ValueError(f"unknown metric {metric!r}")

    def scores_rows(
        self,
        query: RatioMap,
        rows: Sequence[int],
        metric: SimilarityMetric = SimilarityMetric.COSINE,
    ) -> np.ndarray:
        """One-vs-some similarity: the query against selected view rows.

        Same per-row arithmetic as :meth:`scores` (identical gather
        order within each row, so scores match bit-for-bit), restricted
        to ``rows`` — the exact-rerank half of the approximate ranking
        path, where only a shortlist needs true scores.
        """
        view = self._ensure_view()
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return np.empty(0, dtype=np.float64)
        flat, offsets = _segment_gather(view.indptr[rows], view.lens[rows])
        boundaries = offsets[:-1]
        data = view.data[flat]
        indices = view.indices[flat]
        if metric is SimilarityMetric.COSINE:
            dense, query_norm = self._query_dense(query)
            dots = np.add.reduceat(data * dense[indices], boundaries)
            result = dots / (query_norm * view.norms[rows])
            np.clip(result, 0.0, 1.0, out=result)
            return result
        if metric is SimilarityMetric.JACCARD:
            dense, _ = self._query_dense(query)
            common = np.add.reduceat(
                (dense[indices] > 0.0).astype(np.float64), boundaries
            )
            union = view.lens[rows] + float(len(query)) - common
            return common / union
        if metric is SimilarityMetric.OVERLAP:
            dense, _ = self._query_dense(query)
            return np.add.reduceat(np.minimum(data, dense[indices]), boundaries)
        raise ValueError(f"unknown metric {metric!r}")

    def matrix(
        self,
        row_names: Sequence[str],
        col_names: Sequence[str],
        metric: SimilarityMetric = SimilarityMetric.COSINE,
    ) -> np.ndarray:
        """Blocked many-vs-many similarity between two sets of rows.

        Returns ``S[i, j] = similarity(rows[i], cols[j])``.  Columns are
        scattered to a dense (cols × vocabulary) block once; rows stream
        through in blocks sized to bound the temporary expansion.
        """
        view = self._ensure_view()
        rows = np.fromiter(
            (view.row_of[n] for n in row_names), dtype=np.int64, count=len(row_names)
        )
        cols = np.fromiter(
            (view.row_of[n] for n in col_names), dtype=np.int64, count=len(col_names)
        )
        n_rows, n_cols = len(rows), len(cols)
        out = np.zeros((n_rows, n_cols), dtype=np.float64)
        if n_rows == 0 or n_cols == 0:
            return out

        width = len(self.vocab)
        if metric is SimilarityMetric.JACCARD:
            dense = np.zeros((n_cols, width), dtype=bool)
        else:
            dense = np.zeros((n_cols, width), dtype=np.float64)
        for j, row in enumerate(cols):
            start, end = view.indptr[row], view.indptr[row + 1]
            if metric is SimilarityMetric.JACCARD:
                dense[j, view.indices[start:end]] = True
            else:
                dense[j, view.indices[start:end]] = view.data[start:end]

        max_len = int(view.lens[rows].max())
        block = max(1, _BLOCK_ELEMENTS // max(1, n_cols * max_len))
        row_lens = view.lens[rows].astype(np.float64)
        col_lens = view.lens[cols].astype(np.float64)
        for lo in range(0, n_rows, block):
            hi = min(lo + block, n_rows)
            chunk = rows[lo:hi]
            flat, offsets = _segment_gather(view.indptr[chunk], view.lens[chunk])
            indices = view.indices[flat]
            boundaries = offsets[:-1]
            if metric is SimilarityMetric.COSINE:
                contrib = dense[:, indices] * view.data[flat]
                dots = np.add.reduceat(contrib, boundaries, axis=1)
                part = dots.T / (view.norms[chunk][:, None] * view.norms[cols][None, :])
                np.clip(part, 0.0, 1.0, out=part)
            elif metric is SimilarityMetric.JACCARD:
                common = np.add.reduceat(
                    dense[:, indices].astype(np.float64), boundaries, axis=1
                ).T
                union = row_lens[lo:hi][:, None] + col_lens[None, :] - common
                part = common / union
            elif metric is SimilarityMetric.OVERLAP:
                contrib = np.minimum(dense[:, indices], view.data[flat])
                part = np.add.reduceat(contrib, boundaries, axis=1).T
            else:
                raise ValueError(f"unknown metric {metric!r}")
            out[lo:hi] = part
        return out

    def all_pairs(
        self, metric: SimilarityMetric = SimilarityMetric.COSINE
    ) -> np.ndarray:
        """The full active-population similarity matrix."""
        names = self.names
        return self.matrix(names, names, metric)

    # -- ranking ------------------------------------------------------------

    def ranked_indices(self, scores: np.ndarray) -> np.ndarray:
        """Row indices ordered by ``(-score, name)`` — exactly the
        scalar ranking's sort key."""
        view = self._ensure_view()
        perm = view.name_perm
        return perm[np.argsort(-scores[perm], kind="stable")]

    def top_k_indices(self, scores: np.ndarray, k: int) -> np.ndarray:
        """The first ``k`` rows of :meth:`ranked_indices`, via
        ``argpartition`` — identical output, without the full sort."""
        n = len(scores)
        if k >= n:
            return self.ranked_indices(scores)
        view = self._ensure_view()
        names_arr = view.names_arr
        kth = np.partition(scores, n - k)[n - k]
        above = np.flatnonzero(scores > kth)
        above = above[np.lexsort((names_arr[above], -scores[above]))]
        need = k - len(above)
        ties = np.flatnonzero(scores == kth)
        ties = ties[np.argsort(names_arr[ties], kind="stable")][:need]
        return np.concatenate([above, ties])


#: LRU of recently packed candidate populations, so repeated queries
#: against the same mapping (a service ranking every client against one
#: candidate set, Table I sweeping thresholds over one node set) pack
#: once.  Keys pair the mapping's names with the identities of its map
#: objects; each cached population holds strong references to those
#: objects, so an identity match can never be stale.
_PACK_CACHE: "OrderedDict[Tuple[Tuple[str, ...], Tuple[int, ...]], PackedPopulation]" = (
    OrderedDict()
)

#: Shared vocabulary for cached populations: replica identifiers are
#: global, so interning once serves every population.
_SHARED_VOCAB = ReplicaVocabulary()


def packed_for(candidate_maps: Mapping[str, Optional[RatioMap]]) -> PackedPopulation:
    """The packed population for a mapping of candidate maps, cached.

    ``None`` values (unbootstrapped nodes) are skipped, mirroring the
    scalar ranking path.  Because :class:`RatioMap` is immutable, the
    (names, map identities) pair fully determines the packing.
    """
    key = (tuple(candidate_maps.keys()), tuple(map(id, candidate_maps.values())))
    population = _PACK_CACHE.get(key)
    if population is not None:
        _PACK_CACHE.move_to_end(key)
        return population
    population = PackedPopulation(candidate_maps, vocab=_SHARED_VOCAB)
    _PACK_CACHE[key] = population
    while len(_PACK_CACHE) > _PACK_CACHE_SIZE:
        _PACK_CACHE.popitem(last=False)
    return population


def clear_pack_cache() -> None:
    """Drop all cached packed populations (mainly for tests)."""
    _PACK_CACHE.clear()
