"""Closest-node selection (Section IV-A of the paper).

Given a client's ratio map and the maps of candidate servers, rank the
candidates by similarity to the client: if ``cos_sim(A, C) >
cos_sim(A, B)`` then ``C`` is the closer of the two to ``A``.  The
evaluation reports both the Top-1 pick and the average over the Top-5
(Figures 4 and 5).

Ranking runs through the vectorized engine by default — one sparse
matvec over the packed candidate population plus an argsort (or
``argpartition`` for Top-K) — and falls back to the scalar
:func:`~repro.core.similarity.similarity` reference when asked
(``vectorized=False``), which the micro-benchmarks use as the
baseline.  Both paths produce identical rankings: same scores up to
float summation order, same ``(-score, name)`` tie-break.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping, NamedTuple, Optional

from repro.core.engine import packed_for
from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric, similarity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ann import AnnParams

#: How many finished rankings a packed population remembers.  A CRP
#: service answers many positioning queries per probe round, and a
#: client's ratio map is a stable object between rounds (the service
#: caches maps against tracker versions), so repeat queries are common.
_MEMO_SIZE = 16


class RankedCandidate(NamedTuple):
    """One candidate server with its similarity to the client."""

    name: str
    score: float

    @property
    def has_signal(self) -> bool:
        """False when the maps were orthogonal — CRP can only say
        "probably not nearby", never how far (Section III-B)."""
        return self.score > 0.0


def _build_ranked(
    names: List[str], values: List[float], order: List[int]
) -> List[RankedCandidate]:
    """Materialise ``RankedCandidate`` rows for an index order.

    ``tuple.__new__`` skips the namedtuple constructor's keyword
    plumbing — this loop is the hot remainder of a ranking query once
    the scoring itself is a single matvec.
    """
    make = tuple.__new__
    cls = RankedCandidate
    return [make(cls, (names[i], values[i])) for i in order]


def _remember(population, key, client_map: RatioMap, result) -> None:
    """Memoise a finished ranking on the population (bounded LRU).

    The key carries ``id(client_map)``; storing the map itself pins the
    id so it cannot be reused while the entry lives.  The population
    clears the memo whenever its membership changes.
    """
    memo = population.memo
    memo[key] = (client_map, result)
    while len(memo) > _MEMO_SIZE:
        memo.popitem(last=False)


def _recall(population, key, client_map: RatioMap):
    """A memoised ranking, or None — refreshing recency on the hit so
    a hot entry survives eviction rotation (eviction drops the least
    recently *used* entry, not the oldest inserted)."""
    memo = population.memo
    hit = memo.get(key)
    if hit is not None and hit[0] is client_map:
        memo.move_to_end(key)
        return hit[1]
    return None


def _rank_scalar(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    metric: SimilarityMetric,
) -> List[RankedCandidate]:
    """The reference implementation: one scalar similarity per candidate."""
    ranked = [
        RankedCandidate(name, similarity(client_map, candidate_map, metric))
        for name, candidate_map in candidate_maps.items()
        if candidate_map is not None
    ]
    ranked.sort(key=lambda c: (-c.score, c.name))
    return ranked


def rank_candidates(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    vectorized: bool = True,
) -> List[RankedCandidate]:
    """All candidates, ranked by similarity to the client, best first.

    Candidates with missing (``None``) maps are skipped — a node that
    has not bootstrapped cannot be ranked.  Ties break by name so the
    ranking is deterministic.
    """
    if not vectorized:
        return _rank_scalar(client_map, candidate_maps, metric)
    population = packed_for(candidate_maps)
    if len(population) == 0:
        return []
    memo_key = (id(client_map), metric, 0)
    hit = _recall(population, memo_key, client_map)
    if hit is not None:
        return list(hit)
    scores = population.scores(client_map, metric)
    order = population.ranked_indices(scores)
    result = _build_ranked(population.names, scores.tolist(), order.tolist())
    _remember(population, memo_key, client_map, result)
    return list(result)


def rank_packed(
    client_map: RatioMap,
    population,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    exclude: Optional[str] = None,
    k: Optional[int] = None,
    approx: Optional["AnnParams"] = None,
) -> List[RankedCandidate]:
    """Rank an already-packed population against a client map.

    The serving path's entry point: the caller owns a long-lived
    :class:`~repro.core.engine.PackedPopulation` kept current through
    its add/remove API, so there is no per-query packing step at all —
    one matvec, one argsort.  ``exclude`` drops a single name from the
    ranking (a client that is itself a tracked candidate must not be
    ranked against itself); exclusion happens *before* any Top-K
    cutoff, so asking for ``k`` rows yields ``k`` even when the
    excluded name would have landed inside the slice.

    ``k`` keeps only the best ``k`` rows (``argpartition`` instead of a
    full sort — same rows as the full ranking's prefix).  ``approx``
    (an :class:`~repro.core.ann.AnnParams`) additionally routes a
    ``k``-query through the sketch index's shortlist + exact rerank —
    sublinear, with true scores; it is ignored without ``k``, since a
    full ranking needs every score anyway.

    Produces the same rows as ``rank_candidates`` over the same maps:
    per-candidate scores sum each row's dot product in map-iteration
    order regardless of packing history, and the ``(-score, name)``
    tie-break is independent of row order.
    """
    if len(population) == 0:
        return []
    if k is not None and k < 1:
        raise ValueError("k must be at least 1")
    use_approx = approx is not None and k is not None
    if k is None and approx is None:
        memo_key = (id(client_map), metric, -1, exclude)
    else:
        memo_key = (id(client_map), metric, -1, exclude, k, approx)
    hit = _recall(population, memo_key, client_map)
    if hit is not None:
        return list(hit)
    if use_approx:
        from repro.core import ann

        result = ann.approx_top_k(
            client_map, population, k, metric, params=approx, exclude=exclude
        )
    else:
        scores = population.scores(client_map, metric)
        if k is None:
            order = population.ranked_indices(scores)
        else:
            # Exclusion before cutoff: fetch one spare row when the
            # excluded name could land inside the slice.
            spare = 1 if exclude is not None and exclude in population else 0
            order = population.top_k_indices(scores, k + spare)
        result = _build_ranked(population.names, scores.tolist(), order.tolist())
        if exclude is not None:
            result = [c for c in result if c.name != exclude]
        if k is not None:
            result = result[:k]
    _remember(population, memo_key, client_map, result)
    return list(result)


def select_top_k(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    k: int,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    vectorized: bool = True,
    approx: Optional["AnnParams"] = None,
) -> List[RankedCandidate]:
    """The best ``k`` candidates (the paper's "Top 5" uses k=5).

    Vectorized, this is an ``argpartition`` rather than a full sort —
    with the same output as ``rank_candidates(...)[:k]``, ties and all.
    Passing ``approx`` (an :class:`~repro.core.ann.AnnParams`) routes
    the query through the sketch index instead — shortlist gather +
    exact rerank, sublinear in the candidate count, with identical
    output whenever the shortlist covers the exact Top-K (which the
    ``ann-vs-exact`` self-check pair verifies at the calibrated
    widths).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if approx is not None and not vectorized:
        raise ValueError("approximate ranking requires the vectorized path")
    if not vectorized:
        return _rank_scalar(client_map, candidate_maps, metric)[:k]
    population = packed_for(candidate_maps)
    if len(population) == 0:
        return []
    memo_key = (id(client_map), metric, k) if approx is None else (
        id(client_map), metric, k, approx
    )
    hit = _recall(population, memo_key, client_map)
    if hit is not None:
        return list(hit)
    if approx is not None:
        from repro.core import ann

        result = ann.approx_top_k(client_map, population, k, metric, params=approx)
    else:
        scores = population.scores(client_map, metric)
        order = population.top_k_indices(scores, k)
        result = _build_ranked(population.names, scores.tolist(), order.tolist())
    _remember(population, memo_key, client_map, result)
    return list(result)


def select_closest(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    metric: SimilarityMetric = SimilarityMetric.COSINE,
) -> Optional[RankedCandidate]:
    """The single best candidate ("Top 1"), or None with no candidates."""
    ranked = select_top_k(client_map, candidate_maps, 1, metric)
    return ranked[0] if ranked else None
