"""Closest-node selection (Section IV-A of the paper).

Given a client's ratio map and the maps of candidate servers, rank the
candidates by similarity to the client: if ``cos_sim(A, C) >
cos_sim(A, B)`` then ``C`` is the closer of the two to ``A``.  The
evaluation reports both the Top-1 pick and the average over the Top-5
(Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric, similarity


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate server with its similarity to the client."""

    name: str
    score: float

    @property
    def has_signal(self) -> bool:
        """False when the maps were orthogonal — CRP can only say
        "probably not nearby", never how far (Section III-B)."""
        return self.score > 0.0


def rank_candidates(
    client_map: RatioMap,
    candidate_maps: Mapping[str, RatioMap],
    metric: SimilarityMetric = SimilarityMetric.COSINE,
) -> List[RankedCandidate]:
    """All candidates, ranked by similarity to the client, best first.

    Candidates with missing (``None``) maps are skipped — a node that
    has not bootstrapped cannot be ranked.  Ties break by name so the
    ranking is deterministic.
    """
    ranked = [
        RankedCandidate(name, similarity(client_map, candidate_map, metric))
        for name, candidate_map in candidate_maps.items()
        if candidate_map is not None
    ]
    ranked.sort(key=lambda c: (-c.score, c.name))
    return ranked


def select_top_k(
    client_map: RatioMap,
    candidate_maps: Mapping[str, RatioMap],
    k: int,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
) -> List[RankedCandidate]:
    """The best ``k`` candidates (the paper's "Top 5" uses k=5)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return rank_candidates(client_map, candidate_maps, metric)[:k]


def select_closest(
    client_map: RatioMap,
    candidate_maps: Mapping[str, RatioMap],
    metric: SimilarityMetric = SimilarityMetric.COSINE,
) -> Optional[RankedCandidate]:
    """The single best candidate ("Top 1"), or None with no candidates."""
    ranked = rank_candidates(client_map, candidate_maps, metric)
    return ranked[0] if ranked else None
