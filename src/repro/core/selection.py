"""Closest-node selection (Section IV-A of the paper).

Given a client's ratio map and the maps of candidate servers, rank the
candidates by similarity to the client: if ``cos_sim(A, C) >
cos_sim(A, B)`` then ``C`` is the closer of the two to ``A``.  The
evaluation reports both the Top-1 pick and the average over the Top-5
(Figures 4 and 5).

Ranking runs through the vectorized engine by default — one sparse
matvec over the packed candidate population plus an argsort (or
``argpartition`` for Top-K) — and falls back to the scalar
:func:`~repro.core.similarity.similarity` reference when asked
(``vectorized=False``), which the micro-benchmarks use as the
baseline.  Both paths produce identical rankings: same scores up to
float summation order, same ``(-score, name)`` tie-break.
"""

from __future__ import annotations

from typing import List, Mapping, NamedTuple, Optional

from repro.core.engine import packed_for
from repro.core.ratio_map import RatioMap
from repro.core.similarity import SimilarityMetric, similarity

#: How many finished rankings a packed population remembers.  A CRP
#: service answers many positioning queries per probe round, and a
#: client's ratio map is a stable object between rounds (the service
#: caches maps against tracker versions), so repeat queries are common.
_MEMO_SIZE = 16


class RankedCandidate(NamedTuple):
    """One candidate server with its similarity to the client."""

    name: str
    score: float

    @property
    def has_signal(self) -> bool:
        """False when the maps were orthogonal — CRP can only say
        "probably not nearby", never how far (Section III-B)."""
        return self.score > 0.0


def _build_ranked(
    names: List[str], values: List[float], order: List[int]
) -> List[RankedCandidate]:
    """Materialise ``RankedCandidate`` rows for an index order.

    ``tuple.__new__`` skips the namedtuple constructor's keyword
    plumbing — this loop is the hot remainder of a ranking query once
    the scoring itself is a single matvec.
    """
    make = tuple.__new__
    cls = RankedCandidate
    return [make(cls, (names[i], values[i])) for i in order]


def _remember(population, key, client_map: RatioMap, result) -> None:
    """Memoise a finished ranking on the population (bounded LRU).

    The key carries ``id(client_map)``; storing the map itself pins the
    id so it cannot be reused while the entry lives.  The population
    clears the memo whenever its membership changes.
    """
    memo = population.memo
    memo[key] = (client_map, result)
    while len(memo) > _MEMO_SIZE:
        memo.popitem(last=False)


def _rank_scalar(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    metric: SimilarityMetric,
) -> List[RankedCandidate]:
    """The reference implementation: one scalar similarity per candidate."""
    ranked = [
        RankedCandidate(name, similarity(client_map, candidate_map, metric))
        for name, candidate_map in candidate_maps.items()
        if candidate_map is not None
    ]
    ranked.sort(key=lambda c: (-c.score, c.name))
    return ranked


def rank_candidates(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    vectorized: bool = True,
) -> List[RankedCandidate]:
    """All candidates, ranked by similarity to the client, best first.

    Candidates with missing (``None``) maps are skipped — a node that
    has not bootstrapped cannot be ranked.  Ties break by name so the
    ranking is deterministic.
    """
    if not vectorized:
        return _rank_scalar(client_map, candidate_maps, metric)
    population = packed_for(candidate_maps)
    if len(population) == 0:
        return []
    memo_key = (id(client_map), metric, 0)
    hit = population.memo.get(memo_key)
    if hit is not None and hit[0] is client_map:
        return list(hit[1])
    scores = population.scores(client_map, metric)
    order = population.ranked_indices(scores)
    result = _build_ranked(population.names, scores.tolist(), order.tolist())
    _remember(population, memo_key, client_map, result)
    return list(result)


def rank_packed(
    client_map: RatioMap,
    population,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    exclude: Optional[str] = None,
) -> List[RankedCandidate]:
    """Rank an already-packed population against a client map.

    The serving path's entry point: the caller owns a long-lived
    :class:`~repro.core.engine.PackedPopulation` kept current through
    its add/remove API, so there is no per-query packing step at all —
    one matvec, one argsort.  ``exclude`` drops a single name from the
    finished ranking (a client that is itself a tracked candidate must
    not be ranked against itself).

    Produces the same rows as ``rank_candidates`` over the same maps:
    per-candidate scores sum each row's dot product in map-iteration
    order regardless of packing history, and the ``(-score, name)``
    tie-break is independent of row order.
    """
    if len(population) == 0:
        return []
    memo_key = (id(client_map), metric, -1, exclude)
    hit = population.memo.get(memo_key)
    if hit is not None and hit[0] is client_map:
        return list(hit[1])
    scores = population.scores(client_map, metric)
    order = population.ranked_indices(scores)
    result = _build_ranked(population.names, scores.tolist(), order.tolist())
    if exclude is not None:
        result = [c for c in result if c.name != exclude]
    _remember(population, memo_key, client_map, result)
    return list(result)


def select_top_k(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    k: int,
    metric: SimilarityMetric = SimilarityMetric.COSINE,
    *,
    vectorized: bool = True,
) -> List[RankedCandidate]:
    """The best ``k`` candidates (the paper's "Top 5" uses k=5).

    Vectorized, this is an ``argpartition`` rather than a full sort —
    with the same output as ``rank_candidates(...)[:k]``, ties and all.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not vectorized:
        return _rank_scalar(client_map, candidate_maps, metric)[:k]
    population = packed_for(candidate_maps)
    if len(population) == 0:
        return []
    memo_key = (id(client_map), metric, k)
    hit = population.memo.get(memo_key)
    if hit is not None and hit[0] is client_map:
        return list(hit[1])
    scores = population.scores(client_map, metric)
    order = population.top_k_indices(scores, k)
    result = _build_ranked(population.names, scores.tolist(), order.tolist())
    _remember(population, memo_key, client_map, result)
    return list(result)


def select_closest(
    client_map: RatioMap,
    candidate_maps: Mapping[str, Optional[RatioMap]],
    metric: SimilarityMetric = SimilarityMetric.COSINE,
) -> Optional[RankedCandidate]:
    """The single best candidate ("Top 1"), or None with no candidates."""
    ranked = select_top_k(client_map, candidate_maps, 1, metric)
    return ranked[0] if ranked else None
