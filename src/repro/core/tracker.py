"""Redirection tracking: the probe log behind each node's ratio maps.

A tracker records, per CDN customer name, the replica addresses each
lookup returned and when.  Ratio maps are then built over a **window**
— either the last *k* probes (the paper's Figure 9 sweeps window sizes
of 5/10/30/all) or a trailing time span — or with **exponential
decay** (:meth:`RedirectionTracker.decayed_ratio_map`), the natural
engineering answer to Figure 9's finding that long histories go stale
under dynamic conditions: old observations fade smoothly instead of
falling off a cliff at the window edge.

Both probing modes from the paper are supported:

* **Active** — the CRP client issues its own periodic lookups
  (Figure 8 sweeps the probe interval; 100 minutes is enough).
* **Passive** — ``observe()`` ingests redirections seen in ordinary
  user traffic (Section VI: "even this minor overhead may not be
  necessary if the service can passively monitor user-generated DNS
  translations").  The tracker does not care which mode fed it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ratio_map import RatioMap


@dataclass(frozen=True)
class Observation:
    """One observed redirection: a lookup's answer at a point in time."""

    at: float
    name: str
    addresses: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ValueError("an observation needs at least one address")


class RedirectionTracker:
    """Per-node log of CDN redirections with windowed ratio maps.

    ``max_observations`` bounds the log for long-lived deployments (a
    node probing two names every 10 minutes for a year logs ~100k
    observations; nothing in CRP needs more history than the largest
    window in use).  ``None`` keeps everything, which is what the
    paper-reproduction experiments use.
    """

    def __init__(self, node_name: str, max_observations: Optional[int] = None) -> None:
        if max_observations is not None and max_observations < 1:
            raise ValueError("max_observations must be at least 1 (or None)")
        self.node_name = node_name
        self.max_observations = max_observations
        self._log: List[Observation] = []
        self.observations_dropped = 0
        #: Monotonic change counter, bumped on every ingest.  Lets
        #: callers (e.g. :class:`~repro.core.service.CRPService`) cache
        #: derived ratio maps and know exactly when they went stale.
        self.version = 0

    # -- ingest ----------------------------------------------------------

    def observe(self, at: float, name: str, addresses: Sequence[str]) -> Observation:
        """Record one redirection observation.

        Observations must arrive in time order (the simulated clock is
        monotonic; real deployments timestamp at arrival).  When the
        log is bounded, the oldest observations fall off the front.
        """
        if self._log and at < self._log[-1].at:
            raise ValueError(
                f"observation out of order: {at} < {self._log[-1].at}"
            )
        observation = Observation(at=at, name=name, addresses=tuple(addresses))
        self._log.append(observation)
        self.version += 1
        if self.max_observations is not None and len(self._log) > self.max_observations:
            overflow = len(self._log) - self.max_observations
            del self._log[:overflow]
            self.observations_dropped += overflow
        return observation

    def discard_before(self, at: float) -> int:
        """Drop all observations strictly older than ``at``.

        The recovery primitive for structural CDN change
        (:mod:`repro.core.change`): once a remap is detected, history
        from before the change describes a world that no longer exists,
        and blending it into ratio maps poisons them.  Bumps
        :attr:`version` when anything is dropped, so every cached
        derived map invalidates.  Returns the number dropped.
        """
        log = self._log
        if not log or log[0].at >= at:
            # Nothing predates the boundary: repeated invalidations at
            # the same edge are free no-ops (no copy, no version bump),
            # so a window can never be truncated twice for one signal.
            return 0
        # The log is time-ordered; binary-search the first kept index
        # (first observation with o.at >= at, ties kept).
        lo, hi = 0, len(log)
        while lo < hi:
            mid = (lo + hi) // 2
            if log[mid].at < at:
                lo = mid + 1
            else:
                hi = mid
        del log[:lo]
        self.observations_dropped += lo
        self.version += 1
        return lo

    # -- queries -----------------------------------------------------------

    @property
    def probe_count(self) -> int:
        """Number of observations recorded (across all names)."""
        return len(self._log)

    @property
    def observations(self) -> Tuple[Observation, ...]:
        """The full log, oldest first."""
        return tuple(self._log)

    @property
    def last_observation_at(self) -> Optional[float]:
        """Timestamp of the newest observation (None when empty) —
        what staleness metadata on positioning answers is aged against."""
        return self._log[-1].at if self._log else None

    def names_seen(self) -> Tuple[str, ...]:
        """CDN customer names with at least one observation, sorted."""
        return tuple(sorted({o.name for o in self._log}))

    def _windowed(
        self,
        name: Optional[str],
        window_probes: Optional[int],
        window_seconds: Optional[float],
        now: Optional[float],
    ) -> List[Observation]:
        selected = self._log if name is None else [o for o in self._log if o.name == name]
        if window_seconds is not None:
            if now is None:
                if not selected:
                    return []
                now = selected[-1].at
            cutoff = now - window_seconds
            selected = [o for o in selected if o.at >= cutoff]
        if window_probes is not None:
            if window_probes < 1:
                raise ValueError("window_probes must be at least 1")
            selected = selected[-window_probes:]
        return selected

    def ratio_map(
        self,
        name: Optional[str] = None,
        window_probes: Optional[int] = None,
        window_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[RatioMap]:
        """The ratio map over a window of the log.

        ``name`` restricts to one CDN customer name (default: all names
        pooled).  ``window_probes`` keeps only the most recent *k*
        observations; ``window_seconds`` keeps only those within a
        trailing time span ending at ``now`` (defaults to the last
        observation's time).  Returns ``None`` when the window is empty
        — the node has no position yet (still bootstrapping).

        Every address in an answer counts as one redirection toward
        that replica: a two-record answer is evidence the mapping
        system considered both replicas good for this node.
        """
        window = self._windowed(name, window_probes, window_seconds, now)
        if not window:
            return None
        counts: Counter = Counter()
        for observation in window:
            counts.update(observation.addresses)
        return RatioMap.from_counts(counts)

    def decayed_ratio_map(
        self,
        half_life_seconds: float,
        name: Optional[str] = None,
        now: Optional[float] = None,
        weight_floor: float = 1e-4,
    ) -> Optional[RatioMap]:
        """A ratio map with exponentially-decayed observation weights.

        Each observation contributes ``0.5 ** (age / half_life)`` per
        returned address.  Observations whose weight has fallen below
        ``weight_floor`` are ignored (they no longer matter and the
        floor keeps the map's support bounded over long histories).
        ``now`` defaults to the last observation's time.  An explicit
        ``now`` earlier than part of the log does not erase the newer
        observations: their weight is clamped to 1.0 (an observation
        can never count for more than "just seen").  Returns ``None``
        when nothing carries weight.
        """
        if half_life_seconds <= 0:
            raise ValueError("half_life_seconds must be positive")
        selected = self._log if name is None else [o for o in self._log if o.name == name]
        if not selected:
            return None
        if now is None:
            now = selected[-1].at
        weights: Dict[str, float] = {}
        for observation in selected:
            # Observations newer than ``now`` (a mid-log reference
            # time) are clamped to full weight instead of dropped.
            age = max(0.0, now - observation.at)
            weight = 0.5 ** (age / half_life_seconds)
            if weight < weight_floor:
                continue
            for address in observation.addresses:
                weights[address] = weights.get(address, 0.0) + weight
        if not weights:
            return None
        total = sum(weights.values())
        return RatioMap({address: w / total for address, w in weights.items()})

    def is_bootstrapped(self, min_probes: int = 10) -> bool:
        """Whether enough probes exist for a useful estimate.

        The paper (Fig. 9) finds a 10-probe window sufficient for
        effective closest-node selection.
        """
        return self.probe_count >= min_probes
