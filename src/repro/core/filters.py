"""CDN-name quality filtering (Section VI).

The paper hand-picked its two CDN names from historical data, but
sketches how a deployment would choose names automatically:

* **Active rule** — during bootstrap, ping the replicas a name returns
  and keep only names whose replicas are low-latency.  Costs a small,
  node-count-independent amount of probing.
* **Passive rule** — drop names that return replicas with addresses in
  the CDN operator's own block: "when the Akamai CDN returns replica
  servers with IP addresses owned by the Akamai domain, those servers
  are often far away from the node performing the DNS lookup."

Both rules are implemented here against the simulated CDN, whose
provider-owned replicas advertise a distinct address block
(:data:`repro.cdn.replica.PROVIDER_OWNED_PREFIX`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, List, Optional, Sequence

from repro.cdn.replica import is_provider_owned_address
from repro.netsim.network import Network
from repro.netsim.topology import Host


class NameVerdict(str, Enum):
    """Whether a CDN name is worth probing for positioning."""

    KEEP = "keep"
    DROP_PROVIDER_OWNED = "drop-provider-owned"
    DROP_HIGH_LATENCY = "drop-high-latency"
    DROP_NO_DATA = "drop-no-data"


@dataclass(frozen=True)
class NameAssessment:
    """The verdict for one name with its supporting numbers."""

    name: str
    verdict: NameVerdict
    provider_owned_fraction: float = 0.0
    best_ping_ms: Optional[float] = None

    @property
    def keep(self) -> bool:
        return self.verdict is NameVerdict.KEEP


class NameQualityFilter:
    """Applies the Section VI name-selection rules."""

    def __init__(
        self,
        provider_owned_max_fraction: float = 0.25,
        ping_threshold_ms: float = 50.0,
        owned_detector: Callable[[str], bool] = is_provider_owned_address,
    ) -> None:
        if not 0.0 <= provider_owned_max_fraction <= 1.0:
            raise ValueError("provider_owned_max_fraction must be in [0, 1]")
        if ping_threshold_ms <= 0:
            raise ValueError("ping_threshold_ms must be positive")
        self.provider_owned_max_fraction = provider_owned_max_fraction
        self.ping_threshold_ms = ping_threshold_ms
        self.owned_detector = owned_detector

    # -- passive rule -----------------------------------------------------

    def assess_passive(self, name: str, answers: Sequence[Sequence[str]]) -> NameAssessment:
        """Judge a name from observed answers alone (no probing).

        ``answers`` is a list of address tuples, one per lookup.  The
        name is dropped when too many answers include provider-owned
        addresses.
        """
        if not answers:
            return NameAssessment(name, NameVerdict.DROP_NO_DATA)
        owned = sum(
            1 for answer in answers if any(self.owned_detector(a) for a in answer)
        )
        fraction = owned / len(answers)
        if fraction > self.provider_owned_max_fraction:
            return NameAssessment(
                name, NameVerdict.DROP_PROVIDER_OWNED, provider_owned_fraction=fraction
            )
        return NameAssessment(name, NameVerdict.KEEP, provider_owned_fraction=fraction)

    # -- active rule --------------------------------------------------------

    def assess_active(
        self,
        name: str,
        node: Host,
        answers: Sequence[Sequence[str]],
        network: Network,
        host_for_address: Callable[[str], Optional[Host]],
    ) -> NameAssessment:
        """Judge a name by pinging the replicas it returned.

        Applies the passive rule first (it is free), then pings each
        distinct replica once and keeps the name only when the best
        replica is within the latency threshold.  The probing cost is
        O(distinct replicas) — small and independent of system size, as
        the paper argues.
        """
        passive = self.assess_passive(name, answers)
        if not passive.keep:
            return passive
        distinct = {address for answer in answers for address in answer}
        pings: List[float] = []
        for address in sorted(distinct):
            replica_host = host_for_address(address)
            if replica_host is not None:
                pings.append(network.measure_rtt_ms(node, replica_host))
        if not pings:
            return NameAssessment(name, NameVerdict.DROP_NO_DATA)
        best = min(pings)
        if best > self.ping_threshold_ms:
            return NameAssessment(
                name,
                NameVerdict.DROP_HIGH_LATENCY,
                provider_owned_fraction=passive.provider_owned_fraction,
                best_ping_ms=best,
            )
        return NameAssessment(
            name,
            NameVerdict.KEEP,
            provider_owned_fraction=passive.provider_owned_fraction,
            best_ping_ms=best,
        )

    def select_names(
        self, assessments: Iterable[NameAssessment]
    ) -> List[str]:
        """The names that survived filtering, in input order."""
        return [a.name for a in assessments if a.keep]
