"""Ratio maps: the compact summary of a node's redirection history.

Section III of the paper: a node ``N`` redirected toward replica
``r_i`` a fraction ``f_i`` of the time has the ratio map

    ν_N = ⟨(r_k, f_k), (r_l, f_l), ..., (r_m, f_m)⟩

with the ``f_i`` summing to one.  The map has one entry per replica the
node has actually seen (hosts see a small set — under ~20 — of replicas
frequently, despite the CDN's world-wide fleet).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Mapping, Tuple

#: Tolerance when validating that ratios sum to one.  Loose enough to
#: absorb float accumulation over many entries; the constructor
#: renormalises exactly afterwards, so downstream math never sees the
#: slack.
_SUM_TOLERANCE = 1e-6


class RatioMap(Mapping[str, float]):
    """An immutable replica → redirection-ratio mapping.

    Behaves as a read-only mapping from replica identifier (we use the
    advertised address, as a real deployment would) to the fraction of
    redirections that named it.  Ratios are strictly positive and sum
    to one; replicas a node never saw simply have no entry (and
    ``map[r]`` raises, while ``map.ratio(r)`` returns 0.0).
    """

    #: ``_vec`` lazily caches this map's packed (vocabulary, columns,
    #: ratios) array entries for the vectorized engine — a short
    #: move-to-front list, one entry per recently-seen vocabulary; see
    #: :mod:`repro.core.engine`.  Never part of the map's value.
    __slots__ = ("_ratios", "_norm", "_vec")

    def __init__(self, ratios: Mapping[str, float]) -> None:
        if not ratios:
            raise ValueError("a ratio map needs at least one entry")
        total = 0.0
        cleaned: Dict[str, float] = {}
        for replica, ratio in ratios.items():
            if ratio <= 0:
                raise ValueError(f"ratio for {replica!r} must be positive, got {ratio}")
            cleaned[str(replica)] = float(ratio)
            total += float(ratio)
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ValueError(f"ratios must sum to 1, got {total}")
        # Renormalise exactly so downstream math can rely on it.
        self._ratios: Dict[str, float] = {r: v / total for r, v in cleaned.items()}
        self._norm = math.sqrt(sum(v * v for v in self._ratios.values()))

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_counts(cls, counts: Mapping[str, int]) -> "RatioMap":
        """Build a map from raw redirection counts."""
        # Negative counts are invalid input and must be reported as
        # such — before the total check, so ``{a: 5, b: -5}`` names the
        # real problem instead of "no redirections".
        if any(c < 0 for c in counts.values()):
            raise ValueError("counts cannot be negative")
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("counts must contain at least one redirection")
        return cls({r: c / total for r, c in counts.items() if c > 0})

    # -- mapping protocol -----------------------------------------------------

    def __getitem__(self, replica: str) -> float:
        return self._ratios[replica]

    def __iter__(self) -> Iterator[str]:
        return iter(self._ratios)

    def __len__(self) -> int:
        return len(self._ratios)

    # -- queries ------------------------------------------------------------

    def ratio(self, replica: str) -> float:
        """The ratio for a replica, 0.0 when never seen."""
        return self._ratios.get(replica, 0.0)

    @property
    def support(self) -> FrozenSet[str]:
        """The set of replicas this node has been redirected to."""
        return frozenset(self._ratios)

    @property
    def norm(self) -> float:
        """Euclidean norm of the ratio vector (used by cosine similarity)."""
        return self._norm

    def strongest(self) -> Tuple[str, float]:
        """The (replica, ratio) entry with the largest ratio.

        Ties break toward the lexicographically smallest replica so the
        result is deterministic — SMF clustering orders nodes by this.
        """
        return min(self._ratios.items(), key=lambda item: (-item[1], item[0]))

    def items_by_ratio(self) -> List[Tuple[str, float]]:
        """All (replica, ratio) entries, strongest first.

        Ties break toward the lexicographically smaller replica, so the
        order is deterministic (``items_by_ratio()[0] == strongest()``).
        Callers that used to sort the private ``_ratios`` should use
        this instead.
        """
        return sorted(self._ratios.items(), key=lambda item: (-item[1], item[0]))

    def dot(self, other: "RatioMap") -> float:
        """Dot product of two ratio vectors over their common support."""
        if len(self._ratios) > len(other._ratios):
            return other.dot(self)
        return sum(
            ratio * other._ratios.get(replica, 0.0)
            for replica, ratio in self._ratios.items()
        )

    def merged_with(self, other: "RatioMap", weight: float = 0.5) -> "RatioMap":
        """A convex combination of two maps.

        Used to combine per-CDN-name maps into one node map; ``weight``
        is the share of ``self``.
        """
        if not 0.0 < weight < 1.0:
            raise ValueError(f"weight must be in (0, 1), got {weight}")
        combined: Dict[str, float] = {}
        for replica, ratio in self._ratios.items():
            combined[replica] = combined.get(replica, 0.0) + weight * ratio
        for replica, ratio in other._ratios.items():
            combined[replica] = combined.get(replica, 0.0) + (1.0 - weight) * ratio
        return RatioMap(combined)

    def __repr__(self) -> str:
        entries = ", ".join(f"{r}⇒{v:.3f}" for r, v in self.items_by_ratio()[:4])
        suffix = ", ..." if len(self._ratios) > 4 else ""
        return f"RatioMap⟨{entries}{suffix}⟩"
