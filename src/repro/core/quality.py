"""Cluster-quality metrics (Section V-B's evaluation vocabulary).

The paper judges clusters by comparing **intracluster** distance (how
far members are from their center, in RTT) against **intercluster**
distance (how far the center is from other clusters' centers):

    "If the average intercluster distance is high relative to an
    intracluster distance, then we are reasonably certain that our
    algorithm has found a good cluster."

Figure 6 plots the CDF of intracluster distances with the matched
intercluster points; a cluster is *good* when its intercluster average
exceeds its intracluster average (the shaded region).  Figure 7 buckets
good clusters by diameter (0–25 ms, 25–75 ms); clusters with diameters
over 75 ms are dropped as "unlikely to be useful to applications".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import Cluster, ClusteringResult

#: Ground-truth RTT oracle: (node_a, node_b) -> milliseconds.  Oracles
#: that additionally expose ``block(rows, cols) -> ndarray`` (e.g.
#: :class:`repro.experiments.harness.PairwiseRtt`) get a vectorized
#: diameter computation instead of the O(n²) Python pair loop.
RttFn = Callable[[str, str], float]

#: The paper's usefulness cap on cluster diameter, ms.
DEFAULT_DIAMETER_CAP_MS = 75.0

#: Figure 7's diameter buckets, ms.
DEFAULT_BUCKETS = ((0.0, 25.0), (25.0, 75.0))


@dataclass(frozen=True)
class ClusterQuality:
    """Distance metrics for one cluster."""

    cluster: Cluster
    #: Max pairwise member RTT.
    diameter_ms: float
    #: Mean member→center RTT.
    intra_avg_ms: float
    #: Mean center→other-centers RTT (NaN-free: None with one cluster).
    inter_avg_ms: Optional[float]
    #: Min center→other-centers RTT.
    inter_min_ms: Optional[float]

    @property
    def is_good(self) -> bool:
        """Members closer to their own center than other centers are."""
        if self.inter_avg_ms is None:
            return False
        return self.inter_avg_ms > self.intra_avg_ms


def evaluate_cluster(
    cluster: Cluster,
    other_centers: Sequence[str],
    rtt: RttFn,
) -> ClusterQuality:
    """Compute the quality metrics for one cluster against the rest.

    When the oracle exposes vectorized ``block`` lookups, the diameter
    (the O(|members|²) part) comes from one dense block ``max`` over
    the same values the pair loop would have visited; averages keep the
    scalar summation order so results are identical either way.
    """
    members = cluster.members
    block = getattr(rtt, "block", None)
    non_center = [m for m in members if m != cluster.center]
    if non_center:
        if block is not None:
            intra_values = block(non_center, [cluster.center])[:, 0].tolist()
        else:
            intra_values = [rtt(m, cluster.center) for m in non_center]
        intra_avg = sum(intra_values) / len(non_center)
    else:
        intra_avg = 0.0
    if len(members) >= 2:
        if block is not None:
            pairwise = block(members, members)
            # The diagonal is self-distance (0 ms), which can never win
            # the max over real pairs; off-diagonal values are exactly
            # the ones the combinations() loop visits.
            diameter = float(np.max(pairwise))
        else:
            diameter = max(rtt(a, b) for a, b in combinations(members, 2))
    else:
        diameter = 0.0
    others = [c for c in other_centers if c != cluster.center]
    if others:
        if block is not None:
            inter_values = block([cluster.center], others)[0].tolist()
        else:
            inter_values = [rtt(cluster.center, c) for c in others]
        inter_avg: Optional[float] = sum(inter_values) / len(inter_values)
        inter_min: Optional[float] = min(inter_values)
    else:
        inter_avg = None
        inter_min = None
    return ClusterQuality(
        cluster=cluster,
        diameter_ms=diameter,
        intra_avg_ms=intra_avg,
        inter_avg_ms=inter_avg,
        inter_min_ms=inter_min,
    )


def evaluate_clustering(
    result: ClusteringResult,
    rtt: RttFn,
    diameter_cap_ms: Optional[float] = DEFAULT_DIAMETER_CAP_MS,
) -> List[ClusterQuality]:
    """Quality metrics for every cluster, optionally capped by diameter.

    The cap reproduces the paper's "we limit our results to clusters
    with diameters smaller than 75 ms".
    """
    centers = [c.center for c in result.clusters]
    qualities = [evaluate_cluster(c, centers, rtt) for c in result.clusters]
    if diameter_cap_ms is not None:
        qualities = [q for q in qualities if q.diameter_ms < diameter_cap_ms]
    return qualities


def good_cluster_buckets(
    qualities: Sequence[ClusterQuality],
    buckets: Sequence[Tuple[float, float]] = DEFAULT_BUCKETS,
) -> Dict[Tuple[float, float], int]:
    """Figure 7: count *good* clusters per diameter bucket."""
    counts: Dict[Tuple[float, float], int] = {tuple(b): 0 for b in buckets}
    for quality in qualities:
        if not quality.is_good:
            continue
        for low, high in counts:
            if low <= quality.diameter_ms < high:
                counts[(low, high)] += 1
                break
    return counts
