"""Small, dependency-light statistics for experiment outputs.

The paper's figures are sorted per-client series (Figs. 4, 5, 8, 9)
and CDFs (Fig. 6); these helpers produce exactly those shapes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0 ≤ q ≤ 100), linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def sorted_series(values: Sequence[float]) -> List[float]:
    """Values sorted ascending — the paper's per-client curve shape."""
    return sorted(values)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points.

    Raises on empty input — the same contract as :func:`mean`,
    :func:`median` and :func:`percentile` (an empty CDF used to be
    returned silently, hiding upstream bugs from callers).
    """
    if not values:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def rank_of(item: T, ordered: Sequence[T]) -> int:
    """Zero-based rank of an item in an ordered list.

    Rank 0 means "the best" (the paper's convention: "if the node
    selected... is the first one in the list, the result is assigned a
    rank of 0").  Raises ``ValueError`` for unknown items.
    """
    return list(ordered).index(item)


def fraction_within(
    a: Sequence[float], b: Sequence[float], tolerance: float
) -> float:
    """Fraction of positions where |a[i] − b[i]| ≤ tolerance.

    Used for the paper's "about 65% of the time CRP Top 5 differs from
    Meridian by less than 7 ms" style statements.
    """
    if len(a) != len(b):
        raise ValueError("series must have equal length")
    if not a:
        raise ValueError("empty series")
    close = sum(1 for x, y in zip(a, b) if abs(x - y) <= tolerance)
    return close / len(a)
