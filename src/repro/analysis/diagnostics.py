"""Per-client diagnostics: why did positioning work (or not) here?

Section V-A of the paper spends a page on root-cause anecdotes — the
New Zealand resolver redirected to 27 replicas spread from
Massachusetts to Japan, the Iceland and Russia servers with no nearby
candidates, the Meridian nodes answering with themselves.  This module
turns that analysis into a reusable tool: given a scenario and a
client, :func:`diagnose_client` reports everything those anecdotes
were built from.

It is also the human-readable view over the observability layer's run
manifests: :func:`summarize_manifest` renders what one run's
redirection machinery actually did, and the module doubles as a small
CLI for inspecting and diffing manifest files::

    python -m repro.analysis.diagnostics reports/fig4.manifest.json
    python -m repro.analysis.diagnostics a.manifest.json b.manifest.json
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.obs import RunManifest, diff_manifests
from repro.workloads.scenario import Scenario


@dataclass
class ClientDiagnosis:
    """Everything worth knowing about one client's CRP position."""

    client: str
    metro: str
    region: str
    #: Distinct replicas in the client's (full-history) map.
    map_support: int
    #: (replica metro, ratio mass) aggregated over the map.
    replica_metros: List[Tuple[str, float]]
    #: Base RTT to the nearest replica in the map, ms.
    nearest_replica_ms: Optional[float]
    #: Base RTT to the farthest replica in the map, ms.
    farthest_replica_ms: Optional[float]
    #: Candidates the client has positive similarity with.
    candidates_with_signal: int
    candidates_total: int
    #: Base RTT to the truly nearest candidate, ms.
    nearest_candidate_ms: Optional[float]

    @property
    def is_poorly_served(self) -> bool:
        """The paper's tail case: the CDN has nothing near this client
        (its New Zealand example had only far-flung replicas).  Well
        served clients see their nearest replica within ~15 ms; a
        25 ms+ nearest replica means the closest deployment is in
        another metro entirely.
        """
        return self.nearest_replica_ms is not None and self.nearest_replica_ms > 25.0

    @property
    def is_isolated_from_candidates(self) -> bool:
        """No candidate server is near (the Iceland/Russia case)."""
        return (
            self.nearest_candidate_ms is not None
            and self.nearest_candidate_ms > 60.0
        )

    @property
    def has_positioning_signal(self) -> bool:
        return self.candidates_with_signal > 0

    def report(self) -> str:
        lines = [
            f"client {self.client} — {self.metro} ({self.region})",
            f"  ratio-map support: {self.map_support} replicas, spread over "
            f"{len(self.replica_metros)} metros",
        ]
        if self.nearest_replica_ms is not None:
            lines.append(
                f"  replica distance: {self.nearest_replica_ms:.1f}–"
                f"{self.farthest_replica_ms:.1f} ms"
                + ("  ← poorly served by the CDN" if self.is_poorly_served else "")
            )
        top = ", ".join(f"{m} ({w:.0%})" for m, w in self.replica_metros[:4])
        lines.append(f"  redirected toward: {top}")
        lines.append(
            f"  CRP signal: {self.candidates_with_signal}/{self.candidates_total} candidates"
            + ("" if self.has_positioning_signal else "  ← orthogonal to every candidate")
        )
        if self.nearest_candidate_ms is not None:
            lines.append(
                f"  nearest candidate: {self.nearest_candidate_ms:.1f} ms"
                + (
                    "  ← no candidate is near this client"
                    if self.is_isolated_from_candidates
                    else ""
                )
            )
        return "\n".join(lines)


def diagnose_client(scenario: Scenario, client: str) -> ClientDiagnosis:
    """Build a diagnosis for one client (full-history map)."""
    host = scenario.host(client)
    ratio_map = scenario.crp.ratio_map(client, window_probes=None)

    replica_metros: Counter = Counter()
    replica_rtts: List[float] = []
    support = 0
    if ratio_map is not None:
        support = len(ratio_map)
        for address, ratio in ratio_map.items():
            if not scenario.cdn.deployment.knows_address(address):
                continue
            replica = scenario.cdn.deployment.by_address(address)
            replica_metros[replica.host.metro.name] += ratio
            replica_rtts.append(scenario.network.base_rtt_ms(host, replica.host))

    ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
    with_signal = sum(1 for r in ranked if r.has_signal)
    candidate_rtts = [
        scenario.network.base_rtt_ms(host, scenario.host(name))
        for name in scenario.candidate_names
    ]
    return ClientDiagnosis(
        client=client,
        metro=host.metro.name,
        region=host.region.value,
        map_support=support,
        replica_metros=sorted(
            replica_metros.items(), key=lambda item: -item[1]
        ),
        nearest_replica_ms=min(replica_rtts) if replica_rtts else None,
        farthest_replica_ms=max(replica_rtts) if replica_rtts else None,
        candidates_with_signal=with_signal,
        candidates_total=len(scenario.candidate_names),
        nearest_candidate_ms=min(candidate_rtts) if candidate_rtts else None,
    )


def tail_summary(
    scenario: Scenario, clients: Optional[Sequence[str]] = None
) -> str:
    """A table of the clients that explain a figure's tail.

    Mirrors the paper's Section V-A analysis: for each client flagged
    poorly-served or candidate-isolated, one row of evidence.
    """
    if clients is None:
        clients = scenario.client_names
    rows = []
    for client in clients:
        diagnosis = diagnose_client(scenario, client)
        if not (diagnosis.is_poorly_served or diagnosis.is_isolated_from_candidates):
            continue
        causes = []
        if diagnosis.is_poorly_served:
            causes.append("CDN-poor region")
        if diagnosis.is_isolated_from_candidates:
            causes.append("no nearby candidate")
        rows.append(
            [
                diagnosis.client,
                diagnosis.metro,
                f"{diagnosis.nearest_replica_ms:.0f}" if diagnosis.nearest_replica_ms else "-",
                f"{diagnosis.nearest_candidate_ms:.0f}" if diagnosis.nearest_candidate_ms else "-",
                " + ".join(causes),
            ]
        )
    if not rows:
        return "no tail clients found"
    return format_table(
        ["client", "metro", "nearest replica (ms)", "nearest candidate (ms)", "cause"],
        rows,
        title="Tail-client diagnosis (the paper's Sec. V-A root causes)",
    )


# -- run-manifest views -------------------------------------------------------

#: (section, counter flat-name, row label) for the summary table; only
#: counters present in the manifest are rendered.
_MANIFEST_ROWS: Tuple[Tuple[str, str, str], ...] = (
    ("probing", "crp.probe.attempts", "probe attempts"),
    ("probing", "crp.probe.retries", "probe retries"),
    ("probing", "crp.probe.failures", "probe failures"),
    ("probing", "crp.probe.deadline_hits", "round-deadline cutoffs"),
    ("probing", "crp.probe.recoveries", "recovery probes"),
    ("probing", "crp.probe.rounds", "probe rounds"),
    ("probing", "crp.observations", "observations recorded"),
    ("dns", "dns.resolver.queries", "resolver queries"),
    ("dns", "dns.resolver.failures", "resolver timeouts (injected)"),
    ("dns", "dns.resolver.errors", "resolution errors"),
    ("dns", "dns.resolver.negative_hits", "negative-cache hits"),
    ("dns", "dns.cache.hits", "TTL-cache hits"),
    ("dns", "dns.cache.misses", "TTL-cache misses"),
    ("dns", "dns.cache.expirations", "TTL-cache expirations"),
    ("dns", "dns.cache.evictions", "TTL-cache LRU evictions"),
    ("dns", "dns.authority.queries", "authoritative queries"),
    ("dns", "dns.authority.down_servfails", "SERVFAILs while down"),
    ("positioning", "crp.position.queries", "positioning queries"),
    ("positioning", "crp.position.stale", "stale answers"),
    ("positioning", "crp.position.fallbacks", "last-good fallbacks"),
    ("positioning", "crp.map_cache.hits", "map-cache hits"),
    ("positioning", "crp.map_cache.misses", "map-cache misses"),
    ("engine", "engine.flushes", "pack flushes"),
    ("engine", "engine.compactions", "compactions"),
    ("engine", "engine.rows_flushed", "rows flushed"),
    ("engine", "engine.rows_dropped", "tombstones dropped"),
)


def summarize_manifest(manifest: RunManifest) -> str:
    """A run manifest rendered for humans.

    Groups the counters every instrumented layer reports (probing,
    DNS, positioning, engine), plus health transitions, fault
    episodes, and the trace-event census.
    """
    header = (
        f"run {manifest.run_key!r}"
        + (f"  scale={manifest.scale}" if manifest.scale else "")
        + (f"  seed={manifest.seed}" if manifest.seed is not None else "")
        + f"  params={manifest.params_fingerprint}"
    )
    lines = [
        header,
        f"  wall {manifest.wall_duration_s:g} s · simulated "
        f"{manifest.sim_duration_s:g} s",
    ]
    counters = manifest.counters()
    rows = []
    for section, name, label in _MANIFEST_ROWS:
        if name in counters:
            rows.append([section, label, counters[name]])
    transitions = {
        name: value
        for name, value in counters.items()
        if name.startswith("crp.health.transitions")
    }
    for name, value in sorted(transitions.items()):
        detail = name.partition("{")[2].rstrip("}")
        rows.append(["health", detail or "transitions", value])
    faults = {
        name: value
        for name, value in counters.items()
        if name.startswith("fault.")
    }
    for name, value in sorted(faults.items()):
        rows.append(["faults", name[len("fault."):], value])
    if rows:
        lines.append(format_table(["layer", "event", "count"], rows))
    else:
        lines.append("  (no counters recorded — observability was disabled?)")
    if manifest.trace_counts:
        trace_rows = [
            [kind, count] for kind, count in sorted(manifest.trace_counts.items())
        ]
        lines.append(format_table(["trace event", "emitted"], trace_rows))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Inspect one manifest, or diff two."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Summarise a RunManifest JSON, or diff two of them."
    )
    parser.add_argument("manifest", help="path to a .manifest.json file")
    parser.add_argument(
        "other",
        nargs="?",
        default=None,
        help="second manifest: print the counter-level diff instead",
    )
    args = parser.parse_args(argv)
    first = RunManifest.load(args.manifest)
    try:
        if args.other is None:
            print(summarize_manifest(first))
        else:
            print(diff_manifests(first, RunManifest.load(args.other)))
    except BrokenPipeError:
        pass  # output piped into head & co.
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
