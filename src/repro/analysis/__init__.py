"""Analysis helpers: series math and report rendering."""

from repro.analysis.stats import (
    cdf_points,
    fraction_within,
    mean,
    median,
    percentile,
    rank_of,
    sorted_series,
)
from repro.analysis.resilience import resilience_snapshot
from repro.analysis.tables import format_series, format_table

__all__ = [
    "resilience_snapshot",
    "cdf_points",
    "fraction_within",
    "mean",
    "median",
    "percentile",
    "rank_of",
    "sorted_series",
    "format_series",
    "format_table",
]
