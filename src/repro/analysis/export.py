"""CSV export of experiment outputs.

The rendered ASCII reports are for humans; these helpers emit the
underlying data so users can re-plot the figures with their own tools
(`runner --out` writes text reports; experiment objects expose series
that feed straight into these).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence, Tuple


def series_to_csv(
    series: Mapping[str, Sequence[float]],
    index_label: str = "client_index",
) -> str:
    """Sorted per-client curves as CSV, one column per series.

    Series may have different lengths (e.g. Fig. 8's unplottable
    clients); shorter columns pad with empty cells.
    """
    if not series:
        raise ValueError("need at least one series")
    names = list(series)
    columns = {name: sorted(series[name]) for name in names}
    length = max(len(v) for v in columns.values())
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([index_label] + names)
    for index in range(length):
        row: list = [index]
        for name in names:
            values = columns[name]
            row.append(values[index] if index < len(values) else "")
        writer.writerow(row)
    return buffer.getvalue()


def cdf_to_csv(
    points: Sequence[Tuple[float, float]],
    value_label: str = "value_ms",
) -> str:
    """(value, cumulative fraction) points as CSV."""
    if not points:
        raise ValueError("need at least one point")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([value_label, "cumulative_fraction"])
    for value, fraction in points:
        writer.writerow([value, fraction])
    return buffer.getvalue()


def table_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A report table as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: Path, content: str) -> Path:
    """Write CSV content, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path
