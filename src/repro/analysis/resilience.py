"""Resilience accounting: one flat counter snapshot per scenario.

Chaos experiments need to report *what actually happened* alongside
accuracy numbers — how many fault episodes fired, how many probes
failed and were retried, how many nodes sat in each health state, how
long quarantined nodes took to come back.  Every substrate already
keeps its own counters; this module flattens them into a single
``str → number`` dict suitable for tables and JSON artifacts.

Structural-change (remap) runs add a time dimension: accuracy drops or
shifts when the CDN re-maps and climbs back as maps re-learn, so the
remap experiments also need *recovery curves* — per-evaluation
accuracy as a fraction of a reference level — and a scalar
*time-to-recover* extracted from one.  Those helpers live here too
(:func:`accuracy_curve`, :func:`time_to_recover`) because they are
pure series arithmetic, shared by the remap sweep and its bench.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import mean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.workloads.scenario import Scenario

Number = Union[int, float]


def resilience_snapshot(scenario: "Scenario") -> Dict[str, Number]:
    """Flatten a scenario's failure/health counters into one dict.

    Keys are namespaced (``crp.*``, ``health.*``, ``chaos.*``,
    ``dns.*``, ``cdn.*``) so snapshots from different runs line up
    column-for-column in reports.
    """
    crp = scenario.crp
    snapshot: Dict[str, Number] = {
        "crp.probes_issued": crp.probes_issued,
        "crp.probe_failures": crp.probe_failures,
        "crp.probe_retries": crp.probe_retries,
        "crp.recovery_probes": crp.recovery_probes,
        "crp.stale_answers": crp.stale_answers,
        "crp.recoveries": len(crp.recovery_times_s),
        "crp.mean_recovery_s": (
            mean(crp.recovery_times_s) if crp.recovery_times_s else 0.0
        ),
    }
    for state, count in sorted(crp.health_summary().items()):
        snapshot[f"health.{state}"] = count
    snapshot["dns.authority_queries_failed_down"] = sum(
        getattr(server, "queries_failed_down", 0)
        for server in scenario.infrastructure.servers
    )
    snapshot["cdn.stale_rankings_served"] = scenario.cdn.mapping.stale_rankings_served
    snapshot["cdn.replicas_down"] = len(scenario.cdn.deployment.down_addresses)
    chaos = getattr(scenario, "chaos", None)
    if chaos is not None:
        for key, value in chaos.counters().items():
            snapshot[f"chaos.{key}"] = value
    remap = getattr(scenario, "remap", None)
    if remap is not None:
        snapshot["cdn.mapping_invalidations"] = scenario.cdn.mapping.invalidations
        snapshot["cdn.replica_migrations"] = scenario.cdn.deployment.migrations
        snapshot["cdn.replica_retirements"] = scenario.cdn.deployment.retirements
        for key, value in remap.counters().items():
            snapshot[f"remap.{key}"] = value
        lags = getattr(scenario, "remap_detection_lags_s", [])
        snapshot["remap.mean_detection_lag_s"] = mean(lags) if lags else 0.0
    detector = getattr(scenario, "detector", None)
    if detector is not None:
        for key, value in detector.counters().items():
            snapshot[f"detect.{key}"] = value
        snapshot["crp.windows_invalidated"] = crp.window_invalidations
        snapshot["crp.observations_invalidated"] = crp.observations_invalidated
    return snapshot


def accuracy_curve(
    times_s: Sequence[float],
    accuracy: Sequence[float],
    reference: float,
) -> List[Tuple[float, float]]:
    """Recovery curve: per evaluation, accuracy over a reference level.

    ``reference`` is whatever level "recovered" means for the caller —
    the pre-change baseline, or (after a structural change that moves
    the achievable level itself) the post-change steady state.  A
    non-positive reference makes every point 1.0: there was nothing to
    recover to.
    """
    if len(times_s) != len(accuracy):
        raise ValueError("times and accuracy series differ in length")
    if reference <= 0.0:
        return [(t, 1.0) for t in times_s]
    return [(t, a / reference) for t, a in zip(times_s, accuracy)]


def time_to_recover(
    times_s: Sequence[float],
    accuracy: Sequence[float],
    target: float,
    tolerance: float = 0.0,
    after: Optional[float] = None,
) -> Optional[float]:
    """Earliest time from which accuracy *stays* within reach of target.

    Scans evaluations at or after ``after`` (default: all) and returns
    the timestamp of the last entry into the ``target - tolerance``
    band — i.e. the first time such that every later evaluation also
    clears the band.  A momentary spike into the band does not count
    as recovered.  Returns ``None`` when the series never settles in
    the band (or there is nothing to scan).
    """
    if len(times_s) != len(accuracy):
        raise ValueError("times and accuracy series differ in length")
    floor = target - tolerance
    recovered_at: Optional[float] = None
    for t, a in zip(times_s, accuracy):
        if after is not None and t < after:
            continue
        if a >= floor:
            if recovered_at is None:
                recovered_at = t
        else:
            recovered_at = None
    return recovered_at
