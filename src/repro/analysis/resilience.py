"""Resilience accounting: one flat counter snapshot per scenario.

Chaos experiments need to report *what actually happened* alongside
accuracy numbers — how many fault episodes fired, how many probes
failed and were retried, how many nodes sat in each health state, how
long quarantined nodes took to come back.  Every substrate already
keeps its own counters; this module flattens them into a single
``str → number`` dict suitable for tables and JSON artifacts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Union

from repro.analysis.stats import mean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.workloads.scenario import Scenario

Number = Union[int, float]


def resilience_snapshot(scenario: "Scenario") -> Dict[str, Number]:
    """Flatten a scenario's failure/health counters into one dict.

    Keys are namespaced (``crp.*``, ``health.*``, ``chaos.*``,
    ``dns.*``, ``cdn.*``) so snapshots from different runs line up
    column-for-column in reports.
    """
    crp = scenario.crp
    snapshot: Dict[str, Number] = {
        "crp.probes_issued": crp.probes_issued,
        "crp.probe_failures": crp.probe_failures,
        "crp.probe_retries": crp.probe_retries,
        "crp.recovery_probes": crp.recovery_probes,
        "crp.stale_answers": crp.stale_answers,
        "crp.recoveries": len(crp.recovery_times_s),
        "crp.mean_recovery_s": (
            mean(crp.recovery_times_s) if crp.recovery_times_s else 0.0
        ),
    }
    for state, count in sorted(crp.health_summary().items()):
        snapshot[f"health.{state}"] = count
    snapshot["dns.authority_queries_failed_down"] = sum(
        getattr(server, "queries_failed_down", 0)
        for server in scenario.infrastructure.servers
    )
    snapshot["cdn.stale_rankings_served"] = scenario.cdn.mapping.stale_rankings_served
    snapshot["cdn.replicas_down"] = len(scenario.cdn.deployment.down_addresses)
    chaos = getattr(scenario, "chaos", None)
    if chaos is not None:
        for key, value in chaos.counters().items():
            snapshot[f"chaos.{key}"] = value
    return snapshot
