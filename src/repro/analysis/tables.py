"""Plain-text rendering of experiment outputs.

Benches print the same rows/series the paper reports; these helpers
keep that output consistent and readable in terminals and CI logs.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table with right-aligned numeric cells."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_series(
    series: Mapping[str, Sequence[float]],
    points: int = 11,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Summarise sorted per-client curves at evenly spaced indices.

    The paper's figure curves have a thousand points; printing every
    one is useless, so the series is sampled at ``points`` quantile
    positions (first, last, and evenly between).
    """
    if points < 2:
        raise ValueError("need at least two sample points")
    headers = ["series"] + [f"p{int(100 * i / (points - 1))}" for i in range(points)]
    rows: List[List[object]] = []
    for name, values in series.items():
        ordered = sorted(values)
        if not ordered:
            rows.append([name] + ["-"] * points)
            continue
        sampled = []
        for i in range(points):
            index = round(i * (len(ordered) - 1) / (points - 1))
            sampled.append(value_format.format(ordered[index]))
        rows.append([name] + sampled)
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
