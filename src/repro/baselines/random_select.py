"""Floor and ceiling selectors for closest-node experiments.

* :class:`RandomSelector` — picks uniformly; any positioning system
  must beat it.
* :class:`OracleSelector` — picks by true instantaneous RTT; no system
  can beat it (up to network dynamics between decision and use).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence


from repro.netsim.rng import derive_rng


class RandomSelector:
    """Uniform random candidate selection."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = derive_rng(seed, "random-selector")

    def closest(self, client: str, candidates: Sequence[str]) -> Optional[str]:
        """A uniformly random candidate (excluding the client)."""
        pool = [c for c in candidates if c != client]
        if not pool:
            return None
        return pool[int(self._rng.integers(0, len(pool)))]


class OracleSelector:
    """Ground-truth selection using an RTT oracle over node names."""

    def __init__(self, rtt: Callable[[str, str], float]) -> None:
        self._rtt = rtt

    def rank(self, client: str, candidates: Sequence[str]) -> List[str]:
        """Candidates ordered by true RTT, closest first."""
        pool = [c for c in candidates if c != client]
        return sorted(pool, key=lambda name: (self._rtt(client, name), name))

    def closest(self, client: str, candidates: Sequence[str]) -> Optional[str]:
        """The truly closest candidate."""
        ranked = self.rank(client, candidates)
        return ranked[0] if ranked else None
