"""Baselines CRP is compared against.

* :mod:`repro.baselines.asn_clustering` — the paper's clustering
  baseline: group hosts by origin AS (RouteViews analogue).
* :mod:`repro.baselines.vivaldi` — decentralised network coordinates
  (Dabek et al., SIGCOMM 2004), referenced by the paper as the
  standard of comparison for Meridian.
* :mod:`repro.baselines.gnp` — landmark-based Global Network
  Positioning (Ng & Zhang, INFOCOM 2002).
* :mod:`repro.baselines.random_select` — random and oracle selection,
  the floor and ceiling for closest-node accuracy.
"""

from repro.baselines.asn_clustering import asn_cluster
from repro.baselines.vivaldi import VivaldiParams, VivaldiSystem
from repro.baselines.gnp import GnpParams, GnpSystem
from repro.baselines.random_select import OracleSelector, RandomSelector

__all__ = [
    "asn_cluster",
    "VivaldiParams",
    "VivaldiSystem",
    "GnpParams",
    "GnpSystem",
    "OracleSelector",
    "RandomSelector",
]
