"""Global Network Positioning (Ng & Zhang, INFOCOM 2002).

The original landmark-based embedding the paper cites: a small set of
landmarks measure RTTs among themselves and solve for coordinates in a
low-dimensional Euclidean space; every other node then measures its
RTT to the landmarks and solves its own coordinate against the now
fixed landmark positions.

Used by the extension benches as the coordinate-system baseline with
explicit landmark dependence (the embedding-error source the paper's
introduction calls out: "the embedding process itself can introduce
significant errors, e.g. in the selection of landmarks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.netsim.rng import derive_rng


@dataclass(frozen=True)
class GnpParams:
    """Embedding configuration."""

    #: Euclidean dimensions of the model space.
    dimensions: int = 5
    #: Optimiser restarts for the landmark embedding.
    restarts: int = 3

    def __post_init__(self) -> None:
        if self.dimensions < 2:
            raise ValueError("GNP needs at least two dimensions")
        if self.restarts < 1:
            raise ValueError("need at least one restart")


def _relative_error(predicted: np.ndarray, measured: np.ndarray) -> float:
    """GNP's objective: summed squared relative errors."""
    safe = np.maximum(measured, 1e-3)
    return float(np.sum(((predicted - measured) / safe) ** 2))


class GnpSystem:
    """A GNP embedding: fit landmarks once, then place nodes."""

    def __init__(self, params: GnpParams = GnpParams(), seed: int = 0) -> None:
        self.params = params
        self._rng = derive_rng(seed, "gnp")
        self._landmarks: List[str] = []
        self._coords: Dict[str, np.ndarray] = {}

    @property
    def landmarks(self) -> List[str]:
        return list(self._landmarks)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._coords)

    # -- fitting ----------------------------------------------------------

    def fit_landmarks(
        self,
        names: Sequence[str],
        rtt_matrix: np.ndarray,
    ) -> float:
        """Embed the landmarks from their measured RTT matrix.

        ``rtt_matrix[i][j]`` is the RTT between landmarks i and j.
        Returns the final objective value.  Must be called before any
        :meth:`place_node`.
        """
        names = list(names)
        count = len(names)
        if count <= self.params.dimensions:
            raise ValueError(
                f"need more landmarks ({count}) than dimensions "
                f"({self.params.dimensions})"
            )
        matrix = np.asarray(rtt_matrix, dtype=float)
        if matrix.shape != (count, count):
            raise ValueError("rtt_matrix shape does not match landmark count")

        dims = self.params.dimensions
        upper = np.triu_indices(count, k=1)
        measured = matrix[upper]

        def objective(flat: np.ndarray) -> float:
            coords = flat.reshape(count, dims)
            diffs = coords[:, None, :] - coords[None, :, :]
            predicted = np.sqrt(np.sum(diffs**2, axis=-1))[upper]
            return _relative_error(predicted, measured)

        best_value, best_coords = float("inf"), None
        scale = float(np.median(measured)) or 1.0
        for _ in range(self.params.restarts):
            start = self._rng.normal(0.0, scale / 2.0, size=count * dims)
            result = minimize(objective, start, method="L-BFGS-B")
            if result.fun < best_value:
                best_value = float(result.fun)
                best_coords = result.x.reshape(count, dims)

        self._landmarks = names
        for index, name in enumerate(names):
            self._coords[name] = best_coords[index]
        return best_value

    def place_node(self, name: str, rtts_to_landmarks: Sequence[float]) -> float:
        """Solve one node's coordinate against the fixed landmarks.

        ``rtts_to_landmarks`` aligns with :attr:`landmarks`.  Returns
        the node's fit objective.
        """
        if not self._landmarks:
            raise ValueError("fit_landmarks must run first")
        measured = np.asarray(rtts_to_landmarks, dtype=float)
        if measured.shape != (len(self._landmarks),):
            raise ValueError("one RTT per landmark required")
        anchors = np.stack([self._coords[l] for l in self._landmarks])

        def objective(point: np.ndarray) -> float:
            predicted = np.sqrt(np.sum((anchors - point) ** 2, axis=1))
            return _relative_error(predicted, measured)

        scale = float(np.median(measured)) or 1.0
        best_value, best_point = float("inf"), None
        for _ in range(self.params.restarts):
            start = self._rng.normal(0.0, scale / 2.0, size=self.params.dimensions)
            result = minimize(objective, start, method="L-BFGS-B")
            if result.fun < best_value:
                best_value = float(result.fun)
                best_point = result.x
        self._coords[name] = best_point
        return best_value

    # -- queries ------------------------------------------------------------

    def estimate_ms(self, a: str, b: str) -> float:
        """Predicted RTT between two embedded nodes."""
        if a == b:
            return 0.0
        return float(np.linalg.norm(self._coords[a] - self._coords[b]))

    def rank_candidates(self, client: str, candidates: Sequence[str]) -> List[Tuple[str, float]]:
        """Candidates ordered by predicted RTT to the client."""
        ranked = [
            (name, self.estimate_ms(client, name))
            for name in candidates
            if name != client
        ]
        ranked.sort(key=lambda item: (item[1], item[0]))
        return ranked

    def closest(self, client: str, candidates: Sequence[str]) -> Optional[str]:
        """The candidate with the smallest predicted RTT."""
        ranked = self.rank_candidates(client, candidates)
        return ranked[0][0] if ranked else None
