"""ASN-based clustering (the paper's Section V-B baseline).

    "ASN-based clustering relies on the hypothesis that nodes located
    in the same autonomous system are nearby in a networking sense.
    We determine the membership of nodes to ASes according to AS
    numbers (ASNs) by using data from the RouteViews project; any node
    belonging to the same ASN is grouped into the same cluster."

In the simulation a host's origin AS is intrinsic to the topology, so
the RouteViews lookup is a field read.  As in Table I, singleton
groups count as unclustered; the cluster "center" (needed only for the
quality metrics) is the RTT-medoid when a ground-truth oracle is
supplied, else the lexicographically first member.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.clustering import Cluster, ClusteringResult
from repro.netsim.topology import Host


def _medoid(members: List[str], rtt: Callable[[str, str], float]) -> str:
    """The member minimising total RTT to the others."""
    best_name, best_total = None, float("inf")
    for candidate in sorted(members):
        total = sum(rtt(candidate, other) for other in members if other != candidate)
        if total < best_total:
            best_name, best_total = candidate, total
    return best_name


def asn_cluster(
    hosts: Sequence[Host],
    rtt: Optional[Callable[[str, str], float]] = None,
) -> ClusteringResult:
    """Group hosts by origin AS.

    ``rtt`` (a ground-truth oracle over host names) is only used to
    pick a meaningful center per cluster for quality evaluation; the
    clustering itself is purely ASN-driven.
    """
    by_asn: Dict[int, List[str]] = defaultdict(list)
    for host in hosts:
        by_asn[host.asn].append(host.name)

    clusters: List[Cluster] = []
    unclustered: List[str] = []
    for asn in sorted(by_asn):
        members = sorted(by_asn[asn])
        if len(members) < 2:
            unclustered.extend(members)
            continue
        center = _medoid(members, rtt) if rtt is not None else members[0]
        rest = [m for m in members if m != center]
        clusters.append(Cluster(center=center, members=[center] + rest))

    clusters.sort(key=lambda c: (-c.size, c.center))
    return ClusteringResult(
        clusters=clusters,
        unclustered=sorted(unclustered),
        params=None,
        total_nodes=len(hosts),
    )
