"""Vivaldi network coordinates (Dabek et al., SIGCOMM 2004).

A decentralised spring-relaxation embedding: each node holds a
Euclidean coordinate plus a non-Euclidean *height* (modelling access
links), and adjusts it after every latency sample against a neighbour,
weighted by the relative confidence of the two nodes' estimates.

The paper cites Vivaldi as the well-known coordinate system Meridian
was shown to beat; we include it so the extension benches can place
CRP among *three* alternatives (direct measurement, coordinates, and
measurement reuse) rather than two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.rng import derive_rng


@dataclass(frozen=True)
class VivaldiParams:
    """Algorithm constants (paper-recommended values)."""

    #: Embedding dimensions (excluding height).
    dimensions: int = 3
    #: Adaptive timestep constant c_c.
    cc: float = 0.25
    #: Error-update constant c_e.
    ce: float = 0.25
    #: Initial per-node error estimate.
    initial_error: float = 1.0
    #: Minimum height, ms (heights cannot go negative).
    min_height_ms: float = 0.1

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ValueError("need at least one dimension")
        if not 0 < self.cc <= 1 or not 0 < self.ce <= 1:
            raise ValueError("cc and ce must be in (0, 1]")


@dataclass
class _Coordinate:
    vector: np.ndarray
    height: float
    error: float


class VivaldiSystem:
    """A population of Vivaldi nodes updated from latency samples."""

    def __init__(self, params: VivaldiParams = VivaldiParams(), seed: int = 0) -> None:
        self.params = params
        self._rng = derive_rng(seed, "vivaldi")
        self._coords: Dict[str, _Coordinate] = {}
        self.updates_applied = 0

    # -- membership --------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Register a node at (near-)origin with maximal uncertainty."""
        if name in self._coords:
            raise ValueError(f"node {name!r} already present")
        # Tiny random offset so colliding nodes can separate.
        vector = self._rng.normal(0.0, 1e-3, size=self.params.dimensions)
        self._coords[name] = _Coordinate(
            vector=vector,
            height=self.params.min_height_ms,
            error=self.params.initial_error,
        )

    def __contains__(self, name: str) -> bool:
        return name in self._coords

    @property
    def nodes(self) -> List[str]:
        return sorted(self._coords)

    # -- core update ---------------------------------------------------------

    def estimate_ms(self, a: str, b: str) -> float:
        """Predicted RTT: Euclidean distance plus both heights."""
        if a == b:
            return 0.0
        ca, cb = self._coords[a], self._coords[b]
        return float(np.linalg.norm(ca.vector - cb.vector)) + ca.height + cb.height

    def error_of(self, name: str) -> float:
        """A node's current confidence value (lower is better)."""
        return self._coords[name].error

    def observe(self, a: str, b: str, rtt_ms: float) -> None:
        """Apply one latency sample: node ``a`` adjusts toward/away
        from ``b`` (the Vivaldi update rule with height vectors)."""
        if rtt_ms <= 0:
            raise ValueError(f"rtt must be positive, got {rtt_ms}")
        if a == b:
            raise ValueError("a node cannot observe itself")
        ca, cb = self._coords[a], self._coords[b]

        predicted = self.estimate_ms(a, b)
        sample_error = abs(predicted - rtt_ms) / rtt_ms

        # Confidence-weighted balance between the two nodes.
        weight = ca.error / (ca.error + cb.error)
        ca.error = sample_error * self.params.ce * weight + ca.error * (
            1.0 - self.params.ce * weight
        )
        delta = self.params.cc * weight

        direction = ca.vector - cb.vector
        norm = float(np.linalg.norm(direction))
        if norm < 1e-9:
            direction = self._rng.normal(0.0, 1.0, size=self.params.dimensions)
            norm = float(np.linalg.norm(direction))
        unit = direction / norm

        force = rtt_ms - predicted
        ca.vector = ca.vector + delta * force * unit
        ca.height = max(
            self.params.min_height_ms, ca.height + delta * force * 0.1
        )
        self.updates_applied += 1

    def observe_symmetric(self, a: str, b: str, rtt_ms: float) -> None:
        """Apply a sample to both endpoints (simulated full exchange)."""
        self.observe(a, b, rtt_ms)
        self.observe(b, a, rtt_ms)

    # -- applications -----------------------------------------------------------

    def rank_candidates(self, client: str, candidates: Sequence[str]) -> List[Tuple[str, float]]:
        """Candidates ordered by predicted RTT to the client."""
        ranked = [
            (name, self.estimate_ms(client, name))
            for name in candidates
            if name != client
        ]
        ranked.sort(key=lambda item: (item[1], item[0]))
        return ranked

    def closest(self, client: str, candidates: Sequence[str]) -> Optional[str]:
        """The candidate with the smallest predicted RTT."""
        ranked = self.rank_candidates(client, candidates)
        return ranked[0][0] if ranked else None
