"""A synthetic PlanetLab deployment.

PlanetLab circa 2006: a few hundred machines at academic and industry
sites, one or two per site, strongly skewed toward North American and
European universities with a meaningful Asian presence and thin
coverage elsewhere.  The paper used the 240 consistently active nodes
of the 413-node Meridian deployment as its candidate servers.

Sites matter: the paper's site-isolated Meridian pathology involves
two machines at the same site, so the generator deploys per-site
(metro) pairs rather than independent hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.netsim.topology import Host, HostKind, Topology
from repro.netsim.world import Region

#: Where PlanetLab sites were, roughly (fractions sum to 1).
SITE_REGION_MIX = {
    Region.NORTH_AMERICA: 0.50,
    Region.EUROPE: 0.27,
    Region.ASIA: 0.15,
    Region.OCEANIA: 0.04,
    Region.SOUTH_AMERICA: 0.03,
    Region.AFRICA: 0.01,
}


@dataclass
class PlanetLabDeployment:
    """The generated deployment: hosts grouped by site."""

    hosts: List[Host] = field(default_factory=list)
    #: site name -> host names at that site.
    sites: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def active(self) -> List[Host]:
        """All generated hosts (the 'consistently active' population)."""
        return list(self.hosts)

    def site_of(self, host_name: str) -> str:
        """Which site a host belongs to."""
        for site, members in self.sites.items():
            if host_name in members:
                return site
        raise KeyError(host_name)


def deploy_planetlab(
    topology: Topology,
    rng: np.random.Generator,
    active_count: int = 240,
    hosts_per_site: int = 2,
) -> PlanetLabDeployment:
    """Create a PlanetLab-like candidate-server population.

    Sites are metros drawn with the PlanetLab regional mix; each site
    hosts up to ``hosts_per_site`` machines (named ``planetlab1.X``,
    ``planetlab2.X`` after the real convention).
    """
    if active_count < 1:
        raise ValueError("need at least one node")
    deployment = PlanetLabDeployment()
    regions = list(SITE_REGION_MIX)
    probabilities = np.array([SITE_REGION_MIX[r] for r in regions])
    probabilities = probabilities / probabilities.sum()

    site_serial = 0
    while len(deployment.hosts) < active_count:
        region = regions[int(rng.choice(len(regions), p=probabilities))]
        metro = topology.world.sample_metro(rng, region=region)
        site_name = f"site-{site_serial}-{metro.name}"
        site_serial += 1
        members: List[str] = []
        for machine in range(1, hosts_per_site + 1):
            if len(deployment.hosts) >= active_count:
                break
            host = topology.create_host(
                f"planetlab{machine}.{site_name}",
                HostKind.PLANETLAB,
                metro,
                rng,
            )
            deployment.hosts.append(host)
            members.append(host.name)
        deployment.sites[site_name] = members
    return deployment
