"""Workload generation: the paper's host populations, synthesised.

* :mod:`repro.workloads.planetlab` — a PlanetLab-like deployment:
  academic sites with one or two collocated, well-connected machines,
  skewed toward North America and Europe.
* :mod:`repro.workloads.kingset` — a King-data-set-like population of
  open recursive DNS servers: a large raw pool filtered down to the
  responsive, recursion-enabled subset, then sampled (the paper:
  4,000 usable of the original set, 1,000 sampled).
* :mod:`repro.workloads.scenario` — the fully wired experiment world:
  topology + network + DNS + CDN + CRP + Meridian + King in one
  object, the entry point experiments and examples build on.
"""

from repro.workloads.planetlab import PlanetLabDeployment, deploy_planetlab
from repro.workloads.kingset import KingDataSet, build_king_dataset
from repro.workloads.scenario import Scenario, ScenarioParams
from repro.workloads.churn import ChurnEvents, ChurnParams, ChurnProcess

__all__ = [
    "ChurnEvents",
    "ChurnParams",
    "ChurnProcess",
    "PlanetLabDeployment",
    "deploy_planetlab",
    "KingDataSet",
    "build_king_dataset",
    "Scenario",
    "ScenarioParams",
]
