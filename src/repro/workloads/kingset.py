"""A synthetic King data set of open recursive DNS servers.

The paper: "we selected 1,000 DNS servers from the King data set...
We filtered the original set to include only those servers responding
to ICMP pings and currently supporting recursive queries, leaving us
with a total of 4,000 hosts from which we randomly selected our 1,000
DNS servers."

The generator reproduces that pipeline: a large raw pool of candidate
servers spread world-wide (DNS servers follow Internet host density,
including regions the CDN covers poorly — the source of the paper's
tail clients like the New Zealand and Iceland resolvers), a
responsiveness/recursion filter, then a uniform sample.  Only sampled
servers become simulation hosts; the raw pool is bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.netsim.topology import Host, HostKind, Topology
from repro.netsim.world import Metro

#: Fraction of raw pool entries that answer ICMP pings.
DEFAULT_PING_RESPONSE_RATE = 0.75
#: Fraction of ping-responsive entries with recursion enabled.
DEFAULT_RECURSION_RATE = 0.55
#: DNS servers are flatter-than-density distributed: every network
#: runs name servers, so small markets are over-represented relative
#: to raw host counts.
DEFAULT_WEIGHT_POWER = 0.6
#: Fraction of servers in a metro's wider catchment (small towns,
#: regional ISPs) rather than the city core.
DEFAULT_RURAL_FRACTION = 0.4
#: Location spread for rural servers, degrees.
DEFAULT_RURAL_SIGMA_DEGREES = 2.0


@dataclass(frozen=True)
class _PoolEntry:
    """One candidate server in the raw King pool."""

    index: int
    metro: Metro
    rural: bool
    responds_to_ping: bool
    supports_recursion: bool

    @property
    def usable(self) -> bool:
        return self.responds_to_ping and self.supports_recursion


@dataclass
class KingDataSet:
    """The filtered-and-sampled DNS-server population."""

    hosts: List[Host] = field(default_factory=list)
    raw_pool_size: int = 0
    usable_pool_size: int = 0

    @property
    def servers(self) -> List[Host]:
        """The sampled DNS servers (simulation hosts)."""
        return list(self.hosts)


def build_king_dataset(
    topology: Topology,
    rng: np.random.Generator,
    sample_size: int = 1000,
    raw_pool_size: int = 4000,
    ping_response_rate: float = DEFAULT_PING_RESPONSE_RATE,
    recursion_rate: float = DEFAULT_RECURSION_RATE,
    weight_power: float = DEFAULT_WEIGHT_POWER,
    rural_fraction: float = DEFAULT_RURAL_FRACTION,
    rural_sigma_degrees: float = DEFAULT_RURAL_SIGMA_DEGREES,
) -> KingDataSet:
    """Generate, filter and sample the DNS-server population.

    Raises ``ValueError`` when the filtered pool cannot cover the
    requested sample.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be at least 1")
    if not 0.0 <= rural_fraction <= 1.0:
        raise ValueError("rural_fraction must be in [0, 1]")
    pool: List[_PoolEntry] = []
    for index in range(raw_pool_size):
        metro = topology.world.sample_metro(rng, weight_power=weight_power)
        pool.append(
            _PoolEntry(
                index=index,
                metro=metro,
                rural=bool(rng.random() < rural_fraction),
                responds_to_ping=bool(rng.random() < ping_response_rate),
                supports_recursion=bool(rng.random() < recursion_rate),
            )
        )
    usable = [entry for entry in pool if entry.usable]
    if len(usable) < sample_size:
        raise ValueError(
            f"only {len(usable)} usable servers in a pool of {raw_pool_size}; "
            f"cannot sample {sample_size}"
        )
    chosen_indices = rng.choice(len(usable), size=sample_size, replace=False)
    dataset = KingDataSet(raw_pool_size=raw_pool_size, usable_pool_size=len(usable))
    for order, index in enumerate(sorted(int(i) for i in chosen_indices)):
        entry = usable[index]
        location = None
        if entry.rural:
            location = topology.world.jittered_location(
                entry.metro, rng, sigma_degrees=rural_sigma_degrees
            )
        host = topology.create_host(
            f"ns{order}.{entry.metro.name}.kingset",
            HostKind.DNS_SERVER,
            entry.metro,
            rng,
            location=location,
        )
        dataset.hosts.append(host)
    return dataset
