"""The fully wired experiment world.

A :class:`Scenario` assembles every subsystem the paper's evaluation
needs — topology and latency model, DNS infrastructure, the CDN with
its customers, the King-data-set client population, the PlanetLab-like
candidate servers, a CRP service covering both populations, the King
estimator, and (optionally) a Meridian overlay over the candidates —
under a single seed, so experiments, examples and tests can start from
one deterministic object.

Scale is parameterised: the paper's full scale (1,000 DNS servers, 240
PlanetLab nodes) is what the benches use; tests and examples run
smaller worlds with identical structure.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.mapping import MappingParams
from repro.cdn.provider import CDNProvider
from repro.core.change import ChangeDetector, ChangeDetectorParams, RecoveryPolicy
from repro.core.service import CRPService, CRPServiceParams, ProbePolicy
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.faults import (
    ChaosController,
    ChaosParams,
    FaultKind,
    FaultSchedule,
    RemapController,
    RemapParams,
    RemapSchedule,
    episodes_from_failure_plan,
)
from repro.dnssim.king import KingEstimator
from repro.dnssim.resolver import RecursiveResolver
from repro.meridian.failures import FailurePlan, FailureRates
from repro.meridian.overlay import MeridianOverlay, MeridianParams
from repro.netsim.asn import ASRegistry
from repro.netsim.clock import SimClock
from repro.netsim.network import Network
from repro.netsim.rng import derive_rng, derive_seed
from repro.netsim.topology import Host, HostKind, Topology
from repro.obs import get_observability
from repro.netsim.world import World, default_world
from repro.workloads.kingset import KingDataSet, build_king_dataset
from repro.workloads.planetlab import PlanetLabDeployment, deploy_planetlab


@dataclass(frozen=True)
class ScenarioParams:
    """Scale and configuration of one experiment world."""

    seed: int = 42
    #: DNS-server clients sampled from the King-like pool.
    dns_servers: int = 120
    #: Raw King pool size; None = four times the sample.
    king_raw_pool: Optional[int] = None
    #: PlanetLab-like candidate servers.
    planetlab_nodes: int = 60
    #: CDN customer names CRP probes (the paper used a Yahoo image
    #: server and www.foxnews.com, both Akamai customers).
    customer_domains: Tuple[str, ...] = ("us.i1.yimg.test", "www.foxnews.test")
    #: Metro-density flattening for the client population (lower =
    #: more broadly distributed; the paper's clustering data set was
    #: deliberately broad).
    king_weight_power: float = 0.6
    #: Fraction of clients in metros' wider catchments.
    king_rural_fraction: float = 0.4
    #: Fraction of DNS-server clients that are flaky (their resolvers
    #: time out a share of queries — like the real King population).
    client_flaky_fraction: float = 0.0
    #: Per-query timeout probability for flaky clients.
    flaky_failure_rate: float = 0.5
    #: CDN mapping-system configuration.
    mapping: MappingParams = MappingParams()
    #: Edge replicas per fully covered metro.
    replicas_per_full_coverage: int = 3
    #: CRP ratio-map window (probes); None = all probes.
    crp_window_probes: Optional[int] = 10
    #: Build the Meridian overlay over the PlanetLab nodes.
    build_meridian: bool = True
    meridian: MeridianParams = MeridianParams()
    #: Meridian deployment pathologies; None = pristine overlay.
    meridian_failures: Optional[FailureRates] = None
    #: Samples per King estimate.
    king_samples: int = 3
    #: Chaos episode processes; None (the default) builds no fault
    #: schedule and leaves every substrate untouched — scenarios
    #: without chaos are bit-identical to before the fault layer
    #: existed.
    chaos: Optional[ChaosParams] = None
    #: CRP probe policy; None picks the legacy single-attempt policy
    #: for plain scenarios and :meth:`ProbePolicy.resilient` when
    #: chaos is enabled.
    probe_policy: Optional[ProbePolicy] = None
    #: Structural CDN change (remap schedule); None (the default)
    #: builds no schedule — scenarios without remap are bit-identical
    #: to before the remap layer existed.
    remap: Optional[RemapParams] = None
    #: YouLighter-style change detection; None runs no detector.
    #: Detection is read-only, so enabling it never perturbs probing.
    change_detection: Optional[ChangeDetectorParams] = None
    #: What CRP does when the detector flags change.
    recovery_policy: RecoveryPolicy = RecoveryPolicy.PASSIVE

    def __post_init__(self) -> None:
        if self.dns_servers < 1:
            raise ValueError("need at least one DNS server client")
        if self.planetlab_nodes < 1:
            raise ValueError("need at least one candidate server")
        if not self.customer_domains:
            raise ValueError("need at least one CDN customer domain")


class Scenario:
    """One deterministic, fully wired experiment world."""

    def __init__(self, params: ScenarioParams = ScenarioParams()) -> None:
        self.params = params
        seed = params.seed
        self.world: World = default_world()
        topo_rng = derive_rng(seed, "scenario", "topology")
        self.registry = ASRegistry.generate(self.world, topo_rng)
        self.topology = Topology(self.world, self.registry)
        self.clock = SimClock()
        self.network = Network(self.topology, self.clock, seed=derive_seed(seed, "network"))
        self.infrastructure = DnsInfrastructure()

        # The CDN and its customers.
        self.cdn = CDNProvider(
            self.topology,
            self.network,
            self.infrastructure,
            seed=derive_seed(seed, "cdn"),
            mapping_params=params.mapping,
            replicas_per_full_coverage=params.replicas_per_full_coverage,
        )
        for domain in params.customer_domains:
            self.cdn.add_customer(domain)

        # Client population (King data set) and candidate servers.
        king_rng = derive_rng(seed, "scenario", "kingset")
        raw_pool = params.king_raw_pool or params.dns_servers * 4
        self.king_dataset: KingDataSet = build_king_dataset(
            self.topology,
            king_rng,
            sample_size=params.dns_servers,
            raw_pool_size=raw_pool,
            weight_power=params.king_weight_power,
            rural_fraction=params.king_rural_fraction,
        )
        pl_rng = derive_rng(seed, "scenario", "planetlab")
        self.planetlab: PlanetLabDeployment = deploy_planetlab(
            self.topology, pl_rng, active_count=params.planetlab_nodes
        )

        # Resolvers: every participating host resolves through itself
        # (DNS servers *are* resolvers; PlanetLab nodes ran local ones).
        # A configurable fraction of clients are flaky.
        flaky_rng = derive_rng(seed, "scenario", "flaky")
        flaky_count = int(round(params.client_flaky_fraction * len(self.clients)))
        flaky_order = list(range(len(self.clients)))
        flaky_rng.shuffle(flaky_order)
        flaky_indices = set(flaky_order[:flaky_count])
        self.resolvers: Dict[str, RecursiveResolver] = {}
        self.flaky_clients: List[str] = []
        for index, host in enumerate(self.clients):
            failure_rate = (
                params.flaky_failure_rate if index in flaky_indices else 0.0
            )
            if failure_rate > 0.0:
                self.flaky_clients.append(host.name)
            self.resolvers[host.name] = RecursiveResolver(
                host, self.infrastructure, self.network, failure_rate=failure_rate
            )
        for host in self.candidates:
            self.resolvers[host.name] = RecursiveResolver(
                host, self.infrastructure, self.network
            )

        # The CRP service over both populations.
        probe_policy = params.probe_policy
        if probe_policy is None:
            probe_policy = (
                ProbePolicy.resilient() if params.chaos is not None else ProbePolicy()
            )
        self.crp = CRPService(
            self.clock,
            CRPServiceParams(
                customer_names=params.customer_domains,
                window_probes=params.crp_window_probes,
                probe_policy=probe_policy,
            ),
        )
        for name, resolver in sorted(self.resolvers.items()):
            self.crp.register_node(name, resolver)

        # King: vantage point plus per-client registration.
        vantage = self.topology.create_host(
            "king-vantage",
            HostKind.INFRA,
            self.world.metro("chicago"),
            derive_rng(seed, "scenario", "vantage"),
        )
        self.king = KingEstimator(
            self.network,
            self.infrastructure,
            vantage,
            samples=params.king_samples,
        )
        for host in self.clients:
            self.king.register_node(self.resolvers[host.name])

        # Meridian over the candidate servers.
        self.meridian: Optional[MeridianOverlay] = None
        self.failure_plan: Optional[FailurePlan] = None
        if params.build_meridian:
            rates = params.meridian_failures
            if rates is not None:
                self.failure_plan = FailurePlan.generate(
                    self.candidates, rates, seed=derive_seed(seed, "failures")
                )
            self.meridian = MeridianOverlay(
                self.network,
                params=params.meridian,
                seed=derive_seed(seed, "meridian"),
                failure_plan=self.failure_plan,
            )
            self.meridian.build(self.candidates)

        # Chaos (strictly opt-in): draw the fault schedule from its own
        # seed stream and hand the controller every substrate knob.
        self.chaos: Optional[ChaosController] = None
        if params.chaos is not None:
            targets = {
                FaultKind.RESOLVER_FLAKY: sorted(self.resolvers),
                FaultKind.AUTHORITY_OUTAGE: list(params.customer_domains),
                FaultKind.REPLICA_OUTAGE: sorted(
                    r.address for r in self.cdn.deployment
                ),
                FaultKind.MAPPING_STALE: [self.cdn.domain],
                FaultKind.REGIONAL_CONGESTION: sorted(
                    {m.region.value for m in self.world.metros}
                ),
            }
            schedule = FaultSchedule.generate(
                targets, params.chaos, seed=derive_seed(seed, "chaos")
            )
            if self.failure_plan is not None:
                schedule = schedule.with_episodes(
                    episodes_from_failure_plan(
                        self.failure_plan, params.chaos.horizon_s
                    )
                )
            self.chaos = ChaosController(
                schedule,
                resolvers=self.resolvers,
                infrastructure=self.infrastructure,
                deployment=self.cdn.deployment,
                mapping=self.cdn.mapping,
                congestion=self.network.congestion,
            )

        # Structural change (strictly opt-in): a seeded remap schedule
        # enacted as permanent transitions, plus an optional
        # YouLighter-style detector watching the client clustering.
        self.remap: Optional[RemapController] = None
        if params.remap is not None:
            remap_schedule = RemapSchedule.generate(
                regions=sorted({m.region.value for m in self.world.metros}),
                replica_addresses=sorted(
                    r.address for r in self.cdn.deployment.edge
                ),
                metros=sorted(
                    m.name for m in self.world.metros if m.cdn_coverage > 0
                ),
                params=params.remap,
                seed=derive_seed(seed, "remap"),
            )
            self.remap = RemapController(
                remap_schedule,
                topology=self.topology,
                deployment=self.cdn.deployment,
                mapping=self.cdn.mapping,
                seed=derive_seed(seed, "remap-enact"),
            )
        self.detector: Optional[ChangeDetector] = None
        if params.change_detection is not None:
            self.detector = ChangeDetector(
                self.crp, self.client_names, params.change_detection
            )
        #: Injection→detection lags, sim-seconds (one per injected
        #: event attributed to a detection).
        self.remap_detection_lags_s: List[float] = []
        self._lag_cursor = 0

    # -- populations -------------------------------------------------------

    @property
    def clients(self) -> List[Host]:
        """The DNS-server clients (King data set sample)."""
        return self.king_dataset.servers

    @property
    def candidates(self) -> List[Host]:
        """The PlanetLab-like candidate servers."""
        return self.planetlab.active

    @property
    def client_names(self) -> List[str]:
        return [h.name for h in self.clients]

    @property
    def candidate_names(self) -> List[str]:
        return [h.name for h in self.candidates]

    # -- conveniences -----------------------------------------------------------

    def host(self, name: str) -> Host:
        """Any participating host by name."""
        return self.topology.host_named(name)

    def rtt_ms(self, a: str, b: str) -> float:
        """True instantaneous RTT between two named hosts."""
        return self.network.rtt_ms(self.host(a), self.host(b))

    def measure_rtt_ms(self, a: str, b: str, samples: int = 3) -> float:
        """A median-of-samples measured RTT between two named hosts."""
        return self.network.measure_rtt_median_ms(self.host(a), self.host(b), samples=samples)

    def king_rtt_ms(self, a: str, b: str) -> float:
        """King-estimated RTT between two registered DNS servers."""
        return self.king.estimate_ms(self.host(a), self.host(b))

    def run_probe_rounds(self, rounds: int, interval_minutes: float = 10.0) -> None:
        """Drive CRP probing: ``rounds`` rounds, clock advancing between.

        Probes all registered nodes each round, then advances the
        clock, so the next round sees fresh mapping epochs.
        """
        if rounds < 1:
            raise ValueError("need at least one round")
        for _ in range(rounds):
            if self.chaos is not None:
                self.chaos.sync(self.clock.now)
            if self.remap is not None:
                self.remap.sync(self.clock.now)
            self.crp.probe_all()
            self.detect_step(self.clock.now)
            self.clock.advance_minutes(interval_minutes)

    def detect_step(self, now: float) -> None:
        """Run the change detector (if any) and apply the recovery policy.

        Safe to call on any cadence: the detector gates itself on its
        snapshot interval.  On a flagged detection, injection→detection
        lags are recorded for every not-yet-attributed remap event, and
        under :attr:`RecoveryPolicy.INVALIDATE` the CRP service drops
        ratio-map history from before the flagged snapshot itself: the
        *previous* snapshot is the pre-change world by construction
        (that is what the distance spiked against), so observations
        taken between the two snapshots straddle the change and cannot
        be trusted either way.
        """
        if self.detector is None:
            return
        signal = self.detector.step(now)
        if signal is None or not signal.flagged:
            return
        if self.remap is not None:
            obs = get_observability()
            lag_histogram = obs.metrics.histogram("remap.detection_lag_s")
            applied_times = self.remap.applied_times
            while (
                self._lag_cursor < len(applied_times)
                and applied_times[self._lag_cursor] <= now
            ):
                lag = now - applied_times[self._lag_cursor]
                self.remap_detection_lags_s.append(lag)
                lag_histogram.observe(lag)
                self._lag_cursor += 1
        if self.params.recovery_policy is RecoveryPolicy.INVALIDATE:
            self.crp.invalidate_windows(before=signal.at)

    # -- event-driven probing ----------------------------------------------

    def dense_workload(self, rounds: int, interval_minutes: float = 10.0):
        """The degenerate workload reproducing :meth:`run_probe_rounds`.

        Every active node probes at every round instant, in the sorted
        order ``probe_all`` uses; feeding it to :meth:`run_events` with
        its ``horizon_s`` yields bit-identical probe behaviour to the
        dense loop (see DESIGN.md §11 for the full argument and its one
        precondition: a probe policy that never advances the clock,
        i.e. the default single-attempt policy).
        """
        from repro.sim.workload import LatticeWorkload

        return LatticeWorkload(self.crp.active_nodes, interval_minutes, rounds)

    def run_events(
        self,
        workload,
        until_s: Optional[float] = None,
        *,
        ttl_sweeps: bool = True,
        epoch_events: bool = True,
    ):
        """Drive CRP probing event-by-event (opt-in; the dense
        :meth:`run_probe_rounds` reference path is untouched).

        ``workload`` supplies per-client arrival times (see
        :mod:`repro.sim.workload`); cost scales with dispatched events,
        not population — idle clients never enter the heap.  Fault
        boundaries become events (no per-round polling), TTL expiries
        sweep resolver caches at the moment they fall due, and
        mapping-epoch boundaries emit an observability heartbeat while
        the refresh itself stays lazy.  Returns the finished
        :class:`~repro.sim.loop.EventLoop` (stats via ``.stats()``).
        """
        import numpy as np

        from repro.sim.events import EventKind
        from repro.sim.loop import EventLoop

        if until_s is None:
            until_s = getattr(workload, "horizon_s", None)
            if until_s is None:
                raise ValueError(
                    "until_s is required for workloads without a horizon_s"
                )
        loop = EventLoop(self.clock, horizon_s=float(until_s))
        crp = self.crp
        resolvers = self.resolvers
        clock = self.clock
        #: Nodes with a TTL sweep already queued (at most one pending
        #: sweep per node keeps housekeeping O(active nodes)).
        pending_sweeps: Dict[str, float] = {}

        def _queue_sweep(name: str) -> None:
            expiry = resolvers[name].cache.next_expiry()
            if expiry is not None and name not in pending_sweeps:
                if loop.schedule(EventKind.TTL_EXPIRY, expiry, name):
                    pending_sweeps[name] = expiry

        def _on_probe(event) -> None:
            name = workload.name_of(event.subject)
            crp.probe_scheduled(name)
            if ttl_sweeps:
                _queue_sweep(name)
            nxt = workload.next_arrival(event.subject, event.at)
            if nxt is not None:
                loop.schedule(EventKind.CLIENT_PROBE, nxt, event.subject)

        def _on_ttl(event) -> None:
            pending_sweeps.pop(event.subject, None)
            cache = resolvers[event.subject].cache
            cache.sweep(clock.now)
            if ttl_sweeps:
                _queue_sweep(event.subject)

        def _on_fault(event) -> None:
            # The clock already sits at (or past) the boundary; sync
            # replays every boundary due, so clustered boundaries cost
            # one handler call each but converge on the same state.
            self.chaos.sync(clock.now)

        def _on_remap(event) -> None:
            self.remap.sync(clock.now)

        def _on_scan(event) -> None:
            # The detector gates itself on its own interval, so the
            # heartbeat just needs to fire at least that often.
            self.detect_step(clock.now)
            loop.schedule(
                EventKind.CHANGE_SCAN,
                event.at + self.detector.params.interval_s,
            )

        def _on_epoch(event) -> None:
            # Observational heartbeat only: the epoch refresh itself
            # stays lazy (an eager refresh would consume network RNG
            # and break dense ≡ event equivalence).
            obs = get_observability()
            epoch = self.cdn.mapping.current_epoch()
            obs.trace.emit("sim.epoch", clock.now, self.cdn.domain, epoch=epoch)
            obs.metrics.gauge("sim.mapping_epoch").set(epoch)
            loop.schedule(
                EventKind.MAPPING_EPOCH,
                event.at + self.cdn.mapping.params.refresh_seconds,
            )

        loop.on(EventKind.CLIENT_PROBE, _on_probe)
        loop.on(EventKind.TTL_EXPIRY, _on_ttl)
        loop.on(EventKind.FAULT_BOUNDARY, _on_fault)
        loop.on(EventKind.REMAP, _on_remap)
        loop.on(EventKind.MAPPING_EPOCH, _on_epoch)
        loop.on(EventKind.CHANGE_SCAN, _on_scan)

        if self.chaos is not None:
            for at in self.chaos.pending_boundary_times(loop.horizon_s):
                loop.schedule(EventKind.FAULT_BOUNDARY, max(at, clock.now))
        if self.remap is not None:
            for at in self.remap.pending_event_times(loop.horizon_s):
                loop.schedule(EventKind.REMAP, max(at, clock.now))
        if self.detector is not None:
            interval = self.detector.params.interval_s
            first_scan = (clock.now // interval + 1) * interval
            loop.schedule(EventKind.CHANGE_SCAN, first_scan)
        if epoch_events:
            refresh = self.cdn.mapping.params.refresh_seconds
            first_epoch = (clock.now // refresh + 1) * refresh
            loop.schedule(EventKind.MAPPING_EPOCH, first_epoch)

        population = len(workload.names)
        first_arrivals = getattr(workload, "first_arrivals", None)
        if first_arrivals is not None:
            arrivals = first_arrivals()
            active = np.nonzero(arrivals < loop.horizon_s)[0]
            loop.count_idle_skips(population - len(active))
            for index in active:
                loop.schedule(
                    EventKind.CLIENT_PROBE, float(arrivals[index]), int(index)
                )
        else:
            for index in range(population):
                arrival = workload.first_arrival(index)
                if arrival is None or arrival >= loop.horizon_s:
                    loop.count_idle_skips()
                else:
                    loop.schedule(EventKind.CLIENT_PROBE, arrival, index)
        loop.run()
        return loop


# -- probe-trace snapshots ---------------------------------------------------


def probe_window_key(
    params: ScenarioParams, rounds: int, interval_minutes: float
) -> str:
    """The content address of one driven probing window.

    Keyed by the exact parameters (via their fingerprint) plus the
    probing schedule; any change to either is a different window and
    must re-simulate.
    """
    from repro.obs.manifest import fingerprint_params

    return (
        f"probe-window:{fingerprint_params(params)}"
        f":r{rounds}:i{interval_minutes:g}"
    )


@dataclass(frozen=True)
class ScenarioSnapshot:
    """A driven scenario, frozen after its probing window.

    The payload is the full pickled :class:`Scenario` — redirection
    logs, tracker versions, resolver caches, clock, and every derived
    RNG stream mid-sequence — so a restored scenario is behaviourally
    indistinguishable from the one that was driven: identical rankings,
    identical subsequent measurements, identical Meridian answers.
    """

    params_fingerprint: str
    rounds: int
    interval_minutes: float
    sim_now: float
    probes_issued: int
    payload: bytes = field(repr=False, default=b"")

    @classmethod
    def capture(
        cls, scenario: Scenario, rounds: int, interval_minutes: float
    ) -> "ScenarioSnapshot":
        from repro.obs.manifest import fingerprint_params

        return cls(
            params_fingerprint=fingerprint_params(scenario.params),
            rounds=rounds,
            interval_minutes=interval_minutes,
            sim_now=scenario.clock.now,
            probes_issued=scenario.crp.probes_issued,
            payload=pickle.dumps(scenario, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self) -> Scenario:
        """A fresh, independent scenario at the snapshotted state."""
        return pickle.loads(self.payload)

    def matches(
        self, params: ScenarioParams, rounds: int, interval_minutes: float
    ) -> bool:
        from repro.obs.manifest import fingerprint_params

        return (
            self.params_fingerprint == fingerprint_params(params)
            and self.rounds == rounds
            and self.interval_minutes == interval_minutes
        )


def _snapshot_mismatch(
    key: str,
    snapshot: ScenarioSnapshot,
    params: ScenarioParams,
    rounds: int,
    interval_minutes: float,
) -> ValueError:
    """A triage-ready error for a snapshot that disagrees with its key."""
    from repro.obs.manifest import fingerprint_params

    return ValueError(
        f"snapshot under {key!r} does not match its key: stored "
        f"(params_fp={snapshot.params_fingerprint}, "
        f"rounds={snapshot.rounds}, "
        f"interval={snapshot.interval_minutes:g}) vs requested "
        f"(params_fp={fingerprint_params(params)}, rounds={rounds}, "
        f"interval={interval_minutes:g})"
    )


def _count(store: object, attr: str, amount: int = 1) -> None:
    """Bump a store counter if this store keeps one (duck-typed)."""
    value = getattr(store, attr, None)
    if isinstance(value, int):
        setattr(store, attr, value + amount)


def driven_checkpoints(
    params: ScenarioParams,
    checkpoints: Sequence[int],
    interval_minutes: float = 10.0,
    store: Optional[object] = None,
    scenario: Optional[Scenario] = None,
):
    """Drive one scenario through ascending round checkpoints, yielding
    ``(rounds, scenario)`` at each — prefix-extended through the store.

    The same live scenario is carried between checkpoints (probing only
    the delta), so a store-less sweep costs exactly one straight run.
    With a store, each checkpoint first tries its exact snapshot, then
    — when nothing is live yet — the longest cached prefix
    (:meth:`~repro.exec.SnapshotStore.best_prefix`), and only then a
    from-scratch build; the state reached at every checkpoint is
    snapshotted before it is yielded.  Because the round loop is
    stateless across iterations, restore-then-extend is behaviourally
    identical to a straight run (the ``snapshot_restore`` invariant and
    the prefix tests pin this down).

    ``scenario`` optionally seeds the drive with an existing *virgin*
    world (no probes issued, clock at zero) built from ``params``.

    Accounting: exact restores and prefix restores add the rounds they
    skipped to ``rounds_saved``; probed deltas add to
    ``rounds_extended``; a from-scratch build counts on ``full_runs``;
    mirrored on obs counters under ``snapshot.window.*``.
    """
    from repro.obs.manifest import fingerprint_params

    targets = sorted(set(int(c) for c in checkpoints))
    if not targets or targets[0] < 1:
        raise ValueError("checkpoints must be positive round counts")
    obs = get_observability()
    params_fp = fingerprint_params(params)
    live = scenario
    if (
        store is not None
        and live is not None
        and (live.crp.probes_issued or live.clock.now)
    ):
        # Window keys describe schedules driven from a fresh world; a
        # pre-probed seed would poison every snapshot written under it.
        raise ValueError("a seed scenario must be virgin (no probes, clock at 0)")
    current = 0
    for target in targets:
        key = probe_window_key(params, target, interval_minutes)
        snapshot = store.get(key) if store is not None else None
        if snapshot is not None:
            if not snapshot.matches(params, target, interval_minutes):
                raise _snapshot_mismatch(
                    key, snapshot, params, target, interval_minutes
                )
            live = snapshot.restore()
            _count(store, "rounds_saved", target - current)
            obs.metrics.counter("snapshot.window.restored").inc()
            obs.metrics.counter("snapshot.window.rounds_saved").inc(
                target - current
            )
            current = target
            yield target, live
            continue
        if live is None:
            prefix = (
                store.best_prefix(params_fp, interval_minutes, target)
                if store is not None and hasattr(store, "best_prefix")
                else None
            )
            if prefix is not None:
                current, prefix_snapshot = prefix
                live = prefix_snapshot.restore()
                _count(store, "rounds_saved", current)
                obs.metrics.counter("snapshot.window.prefix_restored").inc()
                obs.metrics.counter("snapshot.window.rounds_saved").inc(current)
            else:
                live = Scenario(params)
                if store is not None:
                    _count(store, "full_runs")
                    obs.metrics.counter("snapshot.window.full_runs").inc()
        if target > current:
            live.run_probe_rounds(target - current, interval_minutes)
            if store is not None:
                _count(store, "rounds_extended", target - current)
                obs.metrics.counter("snapshot.window.rounds_extended").inc(
                    target - current
                )
            current = target
        if store is not None:
            store.put(
                key, ScenarioSnapshot.capture(live, target, interval_minutes)
            )
        yield target, live


def driven_scenario(
    params: ScenarioParams,
    rounds: int,
    interval_minutes: float = 10.0,
    store: Optional[object] = None,
) -> Scenario:
    """A scenario with its probing window driven, snapshot-cached.

    Without a store this is exactly ``Scenario(params)`` followed by
    :meth:`Scenario.run_probe_rounds`.  With a store (anything offering
    ``get(key)``/``put(key, value)``, e.g.
    :class:`repro.exec.SnapshotStore`), the driven state is captured
    under :func:`probe_window_key` and later calls with the same
    parameters and schedule restore it instead of re-simulating; a
    longer window restores the longest cached prefix of the same
    ``(params, interval)`` and probes only the remaining rounds.
    """
    if store is None:
        scenario = Scenario(params)
        scenario.run_probe_rounds(rounds, interval_minutes)
        return scenario
    for _, scenario in driven_checkpoints(
        params, [rounds], interval_minutes, store=store
    ):
        pass
    return scenario


# -- event-window snapshots ---------------------------------------------------


def event_window_key(
    params: ScenarioParams, workload_key: str, until_s: float
) -> str:
    """The content address of one event-driven probing window.

    Workloads self-describe via their ``key`` attribute (generator
    family, population, rate, seed), so two windows share an address
    exactly when they would replay the same event stream over the same
    world.
    """
    from repro.obs.manifest import fingerprint_params

    return (
        f"event-window:{fingerprint_params(params)}"
        f":{workload_key}:u{until_s:g}"
    )


@dataclass(frozen=True)
class EventWindowSnapshot:
    """A scenario frozen after an event-driven probing window.

    Like :class:`ScenarioSnapshot` but addressed by workload rather
    than by round schedule, and carrying the event-loop stats of the
    window that produced it (a restore skips the simulation, so the
    stats cannot be recomputed).
    """

    params_fingerprint: str
    workload_key: str
    until_s: float
    sim_now: float
    probes_issued: int
    stats: Dict[str, object] = field(default_factory=dict)
    payload: bytes = field(repr=False, default=b"")

    @classmethod
    def capture(
        cls,
        scenario: Scenario,
        workload_key: str,
        until_s: float,
        stats: Dict[str, object],
    ) -> "EventWindowSnapshot":
        from repro.obs.manifest import fingerprint_params

        return cls(
            params_fingerprint=fingerprint_params(scenario.params),
            workload_key=workload_key,
            until_s=until_s,
            sim_now=scenario.clock.now,
            probes_issued=scenario.crp.probes_issued,
            stats=dict(stats),
            payload=pickle.dumps(scenario, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self) -> Scenario:
        return pickle.loads(self.payload)

    def matches(
        self, params: ScenarioParams, workload_key: str, until_s: float
    ) -> bool:
        from repro.obs.manifest import fingerprint_params

        return (
            self.params_fingerprint == fingerprint_params(params)
            and self.workload_key == workload_key
            and self.until_s == until_s
        )


def driven_scenario_events(
    params: ScenarioParams,
    build_workload,
    until_s: float,
    store: Optional[object] = None,
) -> Tuple[Scenario, Dict[str, object]]:
    """A scenario with an event window driven, snapshot-cached.

    ``build_workload`` is a callable taking the constructed scenario
    and returning a workload (the population usually comes from the
    scenario itself); its result must expose a stable ``key``.  Returns
    the scenario plus the window's event-loop stats (from the snapshot
    on a cache hit).
    """
    # A builder may pre-declare its workload key so cache hits skip
    # world construction entirely; otherwise the key is read off the
    # built workload (construction is paid, simulation still saved).
    key_hint = getattr(build_workload, "key", None)
    if store is not None and key_hint is not None:
        snapshot = store.get(event_window_key(params, key_hint, until_s))
        if snapshot is not None:
            if not snapshot.matches(params, key_hint, until_s):
                raise ValueError("event-window snapshot does not match its key")
            return snapshot.restore(), dict(snapshot.stats)
    scenario = Scenario(params)
    workload = build_workload(scenario)
    if key_hint is not None and workload.key != key_hint:
        raise ValueError(
            f"builder key hint {key_hint!r} disagrees with workload key "
            f"{workload.key!r}"
        )
    key = event_window_key(params, workload.key, until_s)
    if store is not None and key_hint is None:
        snapshot = store.get(key)
        if snapshot is not None:
            if not snapshot.matches(params, workload.key, until_s):
                raise ValueError(f"snapshot under {key!r} does not match its key")
            return snapshot.restore(), dict(snapshot.stats)
    loop = scenario.run_events(workload, until_s)
    stats = loop.stats().as_dict()
    if store is not None:
        store.put(
            key, EventWindowSnapshot.capture(scenario, workload.key, until_s, stats)
        )
    return scenario, stats
