"""Churn: nodes joining and leaving mid-experiment.

The paper motivates CRP partly by churn-resilience: coordinate systems
accumulate embedding error as the peer set turns over ("in systems
with high degrees of churn, this could result in compounded embedding
errors over time", Section II), while a CRP node's position derives
only from its *own* redirection history — departures require no repair
anywhere, and a joiner is useful after a handful of probes.

:class:`ChurnProcess` drives that turnover against a scenario: each
step, existing churnable clients leave with a per-step probability and
a Poisson number of fresh clients join (new hosts, new resolvers,
registered with the CRP service).  The candidate-server population is
stable, as PlanetLab was across the paper's experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.dnssim.resolver import RecursiveResolver
from repro.netsim.rng import derive_rng
from repro.netsim.topology import HostKind
from repro.workloads.scenario import Scenario


@dataclass(frozen=True)
class ChurnParams:
    """Turnover intensity."""

    #: Probability each churnable client leaves, per step.
    leave_probability: float = 0.05
    #: Expected number of joining clients per step (Poisson mean).
    join_rate: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.leave_probability <= 1.0:
            raise ValueError("leave_probability must be in [0, 1]")
        if self.join_rate < 0.0:
            raise ValueError("join_rate cannot be negative")


@dataclass
class ChurnEvents:
    """What one churn step did."""

    joined: List[str] = field(default_factory=list)
    left: List[str] = field(default_factory=list)


class ChurnProcess:
    """Applies join/leave events to a scenario's client population."""

    def __init__(
        self,
        scenario: Scenario,
        params: ChurnParams = ChurnParams(),
        seed: int = 0,
    ) -> None:
        self.scenario = scenario
        self.params = params
        self._rng = derive_rng(seed, "churn")
        #: Clients currently subject to churn (initially the scenario's
        #: whole King-set population).
        self.members: Set[str] = set(scenario.client_names)
        self._join_serial = 0
        self.total_joined = 0
        self.total_left = 0

    def step(self) -> ChurnEvents:
        """One churn step: departures then arrivals."""
        events = ChurnEvents()
        for name in sorted(self.members):
            if self._rng.random() < self.params.leave_probability:
                self.scenario.crp.unregister_node(name)
                self.members.discard(name)
                events.left.append(name)
        arrivals = int(self._rng.poisson(self.params.join_rate))
        for _ in range(arrivals):
            metro = self.scenario.world.sample_metro(self._rng)
            host = self.scenario.topology.create_host(
                f"churn-{self._join_serial}", HostKind.DNS_SERVER, metro, self._rng
            )
            self._join_serial += 1
            self.scenario.crp.register_node(
                host.name,
                RecursiveResolver(
                    host, self.scenario.infrastructure, self.scenario.network
                ),
            )
            self.members.add(host.name)
            events.joined.append(host.name)
        self.total_joined += len(events.joined)
        self.total_left += len(events.left)
        return events

    def run(
        self, rounds: int, interval_minutes: float = 10.0
    ) -> List[ChurnEvents]:
        """Interleave churn steps with probe rounds."""
        if rounds < 1:
            raise ValueError("need at least one round")
        history = []
        for _ in range(rounds):
            history.append(self.step())
            self.scenario.crp.probe_all()
            self.scenario.clock.advance_minutes(interval_minutes)
        return history
