"""CRP — CDN-based Relative Network Positioning.

A full reproduction of "Relative Network Positioning via CDN
Redirections" (Su, Choffnes, Bustamante, Kuzmanovic — IEEE ICDCS
2008), including every substrate the paper's evaluation ran on:

* :mod:`repro.core` — CRP itself: ratio maps, cosine similarity,
  closest-node selection, SMF clustering, the service facade.
* :mod:`repro.netsim` — the Internet substrate: topology, AS graph,
  time-varying latency model.
* :mod:`repro.dnssim` — DNS: resolvers, authoritative servers, caches,
  and the King measurement technique.
* :mod:`repro.cdn` — an Akamai-like CDN with latency-driven DNS
  redirection.
* :mod:`repro.meridian` — the Meridian direct-measurement baseline.
* :mod:`repro.baselines` — ASN clustering, Vivaldi, GNP, random/oracle.
* :mod:`repro.workloads` — PlanetLab/King-style populations and the
  :class:`~repro.workloads.scenario.Scenario` experiment world.
* :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import Scenario, ScenarioParams

    scenario = Scenario(ScenarioParams(seed=1, dns_servers=60, planetlab_nodes=40))
    scenario.run_probe_rounds(30)                      # 5 hours of probing
    picks = scenario.crp.rank_servers(
        scenario.client_names[0], scenario.candidate_names
    )
"""

from repro.core import (
    CRPService,
    CRPServiceParams,
    RatioMap,
    RedirectionTracker,
    SimilarityMetric,
    SmfParams,
    cosine_similarity,
    rank_candidates,
    select_closest,
    select_top_k,
    smf_cluster,
)
from repro.workloads import Scenario, ScenarioParams

__version__ = "1.0.0"

__all__ = [
    "CRPService",
    "CRPServiceParams",
    "RatioMap",
    "RedirectionTracker",
    "SimilarityMetric",
    "SmfParams",
    "cosine_similarity",
    "rank_candidates",
    "select_closest",
    "select_top_k",
    "smf_cluster",
    "Scenario",
    "ScenarioParams",
    "__version__",
]
