"""Differential execution: one experiment, paired configurations.

A :class:`DifferentialPair` names two ways of producing the same
*field map* — an ordered mapping of field name → value — that are
promised to agree: the vectorized engine against the scalar reference,
an observed run against an unobserved one, a scenario with a
present-but-disabled chaos stanza against one with no stanza at all.
The :class:`DifferentialRunner` executes both sides and reports the
**first divergent field** per pair (first key order is the left
side's), which is the thing an operator actually wants: not "the
reports differ" but *where* they start differing.

Field values compare exactly, except floats (and sequences of floats),
which compare within the pair's tolerance — the engine's contract is
bit-identical *orderings* with scores equal up to float summation
order, so name fields use zero tolerance and score fields a tiny one.

The standard pair builders cover the equivalences the repo promises:

* :func:`scalar_vector_pair` — rankings, Top-K selections and SMF
  clusterings over one probed scenario, vectorized vs scalar;
* :func:`obs_pair` — an experiment producer's reports with
  observability enabled vs fully disabled;
* :func:`chaos_stanza_pair` — a scenario carrying a zero-rate chaos
  stanza vs one with the stanza absent;
* :func:`remap_stanza_pair` — a zero-magnitude remap schedule (with
  the change detector armed) vs no remap configuration at all;
* :func:`dense_event_pair` — the dense round loop against the event
  engine under the degenerate "every client, every interval" workload;
* :func:`sharded_service_pair` — the N-shard asyncio serving path
  against the unsharded :class:`~repro.core.service.CRPService` on one
  seeded load script, compared answer line by answer line;
* :func:`ann_exact_pair` — sketch-shortlist Top-K against the exact
  engine on a seeded clustered population (names, true-cosine scores,
  and shortlist⊇exact-Top-K coverage);
* :func:`ann_exact_mode_pair` — ``rank_packed``'s k/exclude fast path
  against the legacy rank-everything-then-slice composition, byte for
  byte (the exact-mode identity promise);
* :func:`fig8_packed_scalar_pair` — figure 8's packed ``k=1``
  checkpoint evaluation against the scalar ranking reference over one
  probing schedule, sweep point for sweep point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs as obs_layer
from repro.core.clustering import SmfParams, smf_cluster
from repro.core.selection import rank_candidates, select_top_k
from repro.core.service import ProbePolicy
from repro.core.similarity import SimilarityMetric
from repro.faults import ChaosParams
from repro.obs import NOOP, get_observability
from repro.workloads.scenario import Scenario, ScenarioParams

#: Score agreement between the vectorized and scalar similarity paths
#: (the engine's documented bound is ≤ 1e-12; leave headroom).
SCORE_TOLERANCE = 1e-9

#: A producer of one side of a pair: () → ordered field map.
FieldProducer = Callable[[], Mapping[str, object]]


@dataclass(frozen=True)
class Divergence:
    """The first field on which a pair's two sides disagree."""

    pair: str
    field: str
    left: object
    right: object

    def __str__(self) -> str:
        return (
            f"[{self.pair}] first divergent field {self.field!r}: "
            f"{self.left!r} != {self.right!r}"
        )


@dataclass(frozen=True)
class DifferentialPair:
    """Two runs promised to produce the same field map."""

    name: str
    left: FieldProducer = field(repr=False)
    right: FieldProducer = field(repr=False)
    #: Absolute tolerance for float-valued fields (0.0 = exact).
    tolerance: float = 0.0


def _values_equal(left: object, right: object, tolerance: float) -> bool:
    """Equality with float slack, applied recursively to sequences."""
    if isinstance(left, float) and isinstance(right, float):
        return abs(left - right) <= tolerance
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(
            _values_equal(a, b, tolerance) for a, b in zip(left, right)
        )
    return left == right


def first_divergence(
    pair: str,
    left: Mapping[str, object],
    right: Mapping[str, object],
    tolerance: float = 0.0,
) -> Optional[Divergence]:
    """The first field (left-side order, then right-only extras) on
    which two field maps disagree, or None when they match."""
    for key in left:
        if key not in right:
            return Divergence(pair, key, left[key], "<missing>")
        if not _values_equal(left[key], right[key], tolerance):
            return Divergence(pair, key, left[key], right[key])
    for key in right:
        if key not in left:
            return Divergence(pair, key, "<missing>", right[key])
    return None


class DifferentialRunner:
    """Execute differential pairs and collect their first divergences.

    Each divergence is also emitted as a ``check.violation`` trace
    event through the active observability, so manifests record
    differential failures the same way invariant failures are.
    """

    def __init__(self, pairs: Sequence[DifferentialPair]) -> None:
        self.pairs = list(pairs)

    def run(self) -> List[Divergence]:
        """Run every pair; at most one divergence (the first) per pair."""
        divergences: List[Divergence] = []
        for pair in self.pairs:
            left = pair.left()
            right = pair.right()
            divergence = first_divergence(pair.name, left, right, pair.tolerance)
            if divergence is not None:
                divergences.append(divergence)
                obs = get_observability()
                obs.metrics.counter("check.violations", invariant="differential").inc()
                obs.trace.emit(
                    "check.violation", 0.0, pair.name,
                    invariant="differential",
                    detail=str(divergence),
                )
        return divergences


# -- report/field plumbing ---------------------------------------------------


def report_fields(reports: Mapping[str, str]) -> Dict[str, object]:
    """Flatten named report strings into per-line fields, so a diff
    names the exact first line that changed."""
    fields: Dict[str, object] = {}
    for name in sorted(reports):
        for index, line in enumerate(reports[name].splitlines()):
            fields[f"{name}:{index}"] = line
    return fields


# -- standard pairs ----------------------------------------------------------


def _positioning_fields(scenario: Scenario, *, vectorized: bool) -> Dict[str, object]:
    """Rankings, Top-K picks and clusterings for one probed scenario,
    computed through one similarity path."""
    fields: Dict[str, object] = {}
    crp = scenario.crp
    candidate_maps = crp.ratio_maps(scenario.candidate_names)
    for client in scenario.client_names:
        client_map = crp.ratio_map(client)
        if client_map is None:
            fields[f"rank.{client}"] = None
            continue
        ranked = rank_candidates(
            client_map, candidate_maps, crp.params.metric, vectorized=vectorized
        )
        top = select_top_k(
            client_map, candidate_maps, 5, crp.params.metric, vectorized=vectorized
        )
        fields[f"rank.{client}.names"] = tuple(r.name for r in ranked)
        fields[f"rank.{client}.scores"] = tuple(r.score for r in ranked)
        fields[f"top5.{client}"] = tuple(r.name for r in top)
    client_maps = crp.ratio_maps(scenario.client_names)
    for threshold in (0.1, 0.5):
        result = smf_cluster(
            client_maps,
            SmfParams(threshold=threshold, metric=crp.params.metric),
            vectorized=vectorized,
        )
        key = f"smf.t{threshold:g}"
        fields[f"{key}.clusters"] = tuple(
            (c.center, tuple(c.members)) for c in result.clusters
        )
        fields[f"{key}.unclustered"] = tuple(result.unclustered)
    return fields


def scalar_vector_pair(
    params: ScenarioParams, probe_rounds: int = 6
) -> DifferentialPair:
    """Vectorized vs scalar positioning over one probed scenario.

    The scenario is built and probed once (lazily, on first use) and
    both sides read the same ratio maps, so the only degree of freedom
    is the similarity path itself.
    """
    state: Dict[str, Scenario] = {}

    def scenario() -> Scenario:
        if "scenario" not in state:
            built = Scenario(params)
            built.run_probe_rounds(probe_rounds)
            state["scenario"] = built
        return state["scenario"]

    return DifferentialPair(
        name="vectorized-vs-scalar",
        left=lambda: _positioning_fields(scenario(), vectorized=True),
        right=lambda: _positioning_fields(scenario(), vectorized=False),
        tolerance=SCORE_TOLERANCE,
    )


def obs_pair(
    name: str,
    producer: Callable[[str], Mapping[str, str]],
    scale: str,
) -> DifferentialPair:
    """An experiment producer's reports, observed vs unobserved.

    The observability layer promises bit-identical outputs either way;
    the left side runs under a fresh enabled scope, the right under
    the disabled :data:`~repro.obs.NOOP`.
    """

    def observed_side() -> Mapping[str, object]:
        with obs_layer.observed():
            return report_fields(producer(scale))

    def unobserved_side() -> Mapping[str, object]:
        with obs_layer.observed(NOOP):
            return report_fields(producer(scale))

    return DifferentialPair(
        name=f"obs-on-vs-off.{name}", left=observed_side, right=unobserved_side
    )


def _scenario_summary_fields(params: ScenarioParams, probe_rounds: int) -> Dict[str, object]:
    """A compact behavioural fingerprint of one probed scenario."""
    scenario = Scenario(params)
    scenario.run_probe_rounds(probe_rounds)
    return _summary_fields_of(scenario)


def _summary_fields_of(scenario: Scenario) -> Dict[str, object]:
    """The behavioural fingerprint of an already-driven scenario."""
    crp = scenario.crp
    fields: Dict[str, object] = {
        "sim.now": scenario.clock.now,
        "crp.probes_issued": crp.probes_issued,
        "crp.probe_failures": crp.probe_failures,
        "crp.health": tuple(sorted(crp.health_summary().items())),
    }
    for client in scenario.client_names:
        answer = crp.position(client, scenario.candidate_names)
        fields[f"position.{client}.top"] = tuple(r.name for r in answer.top(5))
        fields[f"position.{client}.stale"] = answer.stale
        fields[f"position.{client}.confidence"] = answer.confidence
    result = crp.cluster(scenario.client_names)
    fields["smf.clusters"] = tuple(
        (c.center, tuple(c.members)) for c in result.clusters
    )
    fields["smf.unclustered"] = tuple(result.unclustered)
    return fields


def dense_event_pair(
    params: ScenarioParams,
    probe_rounds: int = 6,
    interval_minutes: float = 10.0,
) -> DifferentialPair:
    """Dense round loop vs event loop under the degenerate workload.

    With the workload degenerated to "every client, every interval"
    the event engine must reproduce ``run_probe_rounds`` bit for bit:
    same clock values at every probe, same probe order, same substrate
    state at every boundary.  The pair pins the single-attempt probe
    policy — retry backoff advances the shared clock mid-round, which
    shifts subsequent dense rounds off the event lattice; that is the
    one documented precondition of the equivalence (DESIGN.md §11).
    """
    base = dataclasses.replace(
        params, build_meridian=False, probe_policy=ProbePolicy()
    )

    def dense() -> Dict[str, object]:
        scenario = Scenario(base)
        scenario.run_probe_rounds(probe_rounds, interval_minutes)
        return _summary_fields_of(scenario)

    def evented() -> Dict[str, object]:
        scenario = Scenario(base)
        scenario.run_events(scenario.dense_workload(probe_rounds, interval_minutes))
        return _summary_fields_of(scenario)

    return DifferentialPair(
        name="dense-vs-event-degenerate", left=dense, right=evented
    )


def chaos_stanza_pair(
    params: ScenarioParams, probe_rounds: int = 6
) -> DifferentialPair:
    """A zero-rate chaos stanza vs no chaos stanza at all.

    A chaos configuration whose episode rates are all scaled to zero
    draws an empty fault schedule; a scenario carrying it must behave
    exactly like one built with ``chaos=None``.  This also exercises
    the promise that the resilient probe policy (which a chaos stanza
    arms) is inert when nothing actually fails: no retries, no
    quarantines, no fallbacks — the same positioning answers, bit for
    bit.
    """
    base = dataclasses.replace(params, build_meridian=False)
    absent = dataclasses.replace(base, chaos=None)
    disabled = dataclasses.replace(base, chaos=ChaosParams().scaled(0.0))
    return DifferentialPair(
        name="chaos-disabled-vs-absent",
        left=lambda: _scenario_summary_fields(disabled, probe_rounds),
        right=lambda: _scenario_summary_fields(absent, probe_rounds),
    )


def sharded_service_pair(
    seed: int = 2008,
    shards: int = 4,
    clients: int = 48,
    candidates: int = 8,
) -> DifferentialPair:
    """The N-shard serving path vs the unsharded CRPService reference.

    One seeded load script (:func:`repro.serve.loadgen.iter_ops`) feeds
    both sides; every POSITION answer is compared as a canonical
    protocol line, byte for byte, plus the blake2b fingerprint over the
    whole answer stream.  The sharded side runs through the *actual*
    asyncio request loop (per-shard queues and workers), so the pair
    also proves event-loop scheduling cannot perturb answers.  Eviction
    is left unbounded here — a memory bound genuinely changes answers
    (evicted trackers restart cold), which is the one documented
    divergence between the two deployments.
    """
    import asyncio

    from repro.serve import (
        CRPServer,
        LoadgenParams,
        ServeParams,
        ShardedCRPService,
        fingerprint_answers,
        iter_ops,
        replay_unsharded,
        run_script,
    )

    lparams = LoadgenParams(
        clients=clients,
        candidates=candidates,
        seed=seed,
        horizon_s=1800.0,
        aggregate_rate_per_s=clients / 120.0,
    )
    sparams = ServeParams(candidates=lparams.candidate_names(), shards=shards)

    def answer_fields(answers: Sequence[str]) -> Dict[str, object]:
        fields: Dict[str, object] = {"answers": len(answers)}
        for index, line in enumerate(answers):
            fields[f"answer.{index:05d}"] = line
        fields["fingerprint"] = fingerprint_answers(answers)
        return fields

    def sharded_side() -> Dict[str, object]:
        ops = list(iter_ops(lparams))
        server = CRPServer(ShardedCRPService(sparams))
        return answer_fields(asyncio.run(run_script(server, ops)))

    def unsharded_side() -> Dict[str, object]:
        ops = list(iter_ops(lparams))
        return answer_fields(replay_unsharded(sparams, ops))

    return DifferentialPair(
        name=f"sharded-service-vs-unsharded.s{shards}",
        left=sharded_side,
        right=unsharded_side,
    )


def ann_exact_pair(
    seed: int = 2008,
    population: int = 220,
    queries: int = 12,
    k: int = 5,
) -> DifferentialPair:
    """Sketch-shortlist Top-K vs the exact engine, per query.

    One seeded clustered candidate population (the ``ann``
    experiment's workload) is ranked both ways at the calibrated
    default :class:`~repro.core.ann.AnnParams`.  Because the rerank is
    exact, the two sides must agree on names and scores whenever the
    shortlist covers the exact Top-K — and at this population the
    coverage promise is part of the pair: the right side recomputes
    the exact Top-K and checks containment in the shortlist, so a
    calibration regression shows up as a ``covered`` divergence even
    if the final rows happen to agree.
    """
    from repro.core.ann import AnnParams, index_for
    from repro.core.engine import PackedPopulation
    from repro.core.selection import rank_packed
    from repro.experiments.ann import synthetic_candidates, synthetic_queries

    params = AnnParams()
    state: Dict[str, object] = {}

    def built() -> Tuple[object, List[object]]:
        if "packed" not in state:
            maps, _ = synthetic_candidates(population, seed)
            state["packed"] = PackedPopulation(maps)
            state["queries"] = synthetic_queries(maps, queries, seed)
        return state["packed"], state["queries"]  # type: ignore[return-value]

    def exact_side() -> Dict[str, object]:
        packed, query_maps = built()
        fields: Dict[str, object] = {}
        for i, query in enumerate(query_maps):
            ranked = rank_packed(query, packed, k=k)
            fields[f"q{i:03d}.names"] = tuple(r.name for r in ranked)
            fields[f"q{i:03d}.scores"] = tuple(r.score for r in ranked)
            fields[f"q{i:03d}.covered"] = True
        return fields

    def approx_side() -> Dict[str, object]:
        packed, query_maps = built()
        index = index_for(packed, params)
        fields: Dict[str, object] = {}
        for i, query in enumerate(query_maps):
            ranked = rank_packed(query, packed, k=k, approx=params)
            exact_names = {r.name for r in rank_packed(query, packed, k=k)}
            shortlist = set(index.shortlist(query, k))
            fields[f"q{i:03d}.names"] = tuple(r.name for r in ranked)
            fields[f"q{i:03d}.scores"] = tuple(r.score for r in ranked)
            fields[f"q{i:03d}.covered"] = exact_names <= shortlist
        return fields

    return DifferentialPair(
        name="ann-vs-exact",
        left=exact_side,
        right=approx_side,
        tolerance=SCORE_TOLERANCE,
    )


def ann_exact_mode_pair(
    seed: int = 2008,
    population: int = 180,
    queries: int = 10,
    k: int = 5,
) -> DifferentialPair:
    """``rank_packed``'s k/exclude fast path vs the legacy composition.

    Pre-existing callers ranked the whole population, filtered the
    excluded name, and sliced ``[:k]``; the k-aware path (exclusion
    applied *before* the cutoff) must reproduce that byte for byte —
    same names, same float scores, zero tolerance — so turning the
    fast path on cannot change any exact-mode answer.  The excluded
    name is each query's global Top-1, making the exclusion actually
    bite on every query.
    """
    from repro.core.engine import PackedPopulation
    from repro.core.selection import rank_packed
    from repro.experiments.ann import synthetic_candidates, synthetic_queries

    state: Dict[str, object] = {}

    def built() -> Tuple[object, List[object]]:
        if "packed" not in state:
            maps, _ = synthetic_candidates(population, seed)
            state["packed"] = PackedPopulation(maps)
            state["queries"] = synthetic_queries(maps, queries, seed)
        return state["packed"], state["queries"]  # type: ignore[return-value]

    def fields_of(ranked) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
        return tuple(r.name for r in ranked), tuple(r.score for r in ranked)

    def legacy_side() -> Dict[str, object]:
        packed, query_maps = built()
        fields: Dict[str, object] = {}
        for i, query in enumerate(query_maps):
            full = rank_packed(query, packed)
            excluded = full[0].name
            survivors = [r for r in full if r.name != excluded][:k]
            names, scores = fields_of(survivors)
            fields[f"q{i:03d}.excluded"] = excluded
            fields[f"q{i:03d}.names"] = names
            fields[f"q{i:03d}.scores"] = scores
        return fields

    def fast_side() -> Dict[str, object]:
        packed, query_maps = built()
        fields: Dict[str, object] = {}
        for i, query in enumerate(query_maps):
            excluded = rank_packed(query, packed)[0].name
            ranked = rank_packed(query, packed, k=k, exclude=excluded)
            names, scores = fields_of(ranked)
            fields[f"q{i:03d}.excluded"] = excluded
            fields[f"q{i:03d}.names"] = names
            fields[f"q{i:03d}.scores"] = scores
        return fields

    return DifferentialPair(
        name="ann-exact-mode-identity", left=legacy_side, right=fast_side
    )


def remap_stanza_pair(
    params: ScenarioParams, probe_rounds: int = 6
) -> DifferentialPair:
    """A zero-magnitude remap stanza vs no remap stanza at all.

    A remap configuration scaled to magnitude zero generates an empty
    schedule, so a scenario carrying it — *with the change detector
    armed* — must behave exactly like one built with ``remap=None``
    and no detector.  This checks two promises at once: an empty
    schedule enacts nothing, and detection is read-only (its
    clustering snapshots draw from their own RNG and never touch
    probe behaviour).  The recovery policy stays passive so the
    equivalence holds even if clustering noise on this deliberately
    tiny population trips the detector — what a detection *does* is
    the recovery layer's contract, exercised by its own tests.
    """
    from repro.core.change import ChangeDetectorParams, RecoveryPolicy
    from repro.faults import RemapParams

    base = dataclasses.replace(params, build_meridian=False)
    absent = dataclasses.replace(base, remap=None, change_detection=None)
    disabled = dataclasses.replace(
        base,
        remap=RemapParams().scaled(0.0),
        change_detection=ChangeDetectorParams(interval_s=1200.0),
        recovery_policy=RecoveryPolicy.PASSIVE,
    )
    return DifferentialPair(
        name="remap-disabled-vs-absent",
        left=lambda: _scenario_summary_fields(disabled, probe_rounds),
        right=lambda: _scenario_summary_fields(absent, probe_rounds),
    )


def fig8_packed_scalar_pair(
    seed: int = 2008,
    clients: int = 12,
    candidates: int = 6,
    rounds: int = 6,
    evaluations: int = 3,
) -> DifferentialPair:
    """Figure 8's packed checkpoint evaluation vs the scalar reference.

    ``collect_ranks`` routes every checkpoint's Top-1 ranking through
    the packed engine's ``k=1`` fast path; this pair holds the
    resulting sweep point — per-client averages, the sorted series and
    the unplottable count — byte-identical to the same sweep evaluated
    through scalar :func:`~repro.core.selection.rank_candidates`.
    """
    params = ScenarioParams(
        seed=seed,
        dns_servers=clients,
        planetlab_nodes=candidates,
        build_meridian=False,
    )

    def side(packed: bool) -> Callable[[], Mapping[str, object]]:
        def produce() -> Mapping[str, object]:
            from repro.experiments.fig8_interval import collect_ranks

            point = collect_ranks(
                params, rounds, 20.0, evaluations, None, packed=packed
            )
            return {
                "label": point.label,
                "unplottable": point.unplottable_clients,
                "clients": repr(sorted(point.avg_rank_by_client)),
                "avg_ranks": repr(
                    [point.avg_rank_by_client[c] for c in sorted(point.avg_rank_by_client)]
                ),
                "series": repr(point.series),
            }

        return produce

    return DifferentialPair(
        name="fig8-packed-vs-scalar",
        left=side(True),
        right=side(False),
    )
