"""The self-check harness behind ``runner <exp> --selfcheck``.

One call runs the whole correctness battery at small scale:

1. **Invariant sweep** — build a tiny probed scenario and run every
   built-in invariant over its live objects: each node's tracker and
   ratio map, the packed engine population behind the candidate maps,
   every resolver's TTL cache, the service health machine (records and
   emitted transitions), an SMF clustering's post-conditions, and a
   prefix-extended probing window (restore a cached half-schedule,
   probe the rest) against the straight-through scenario.
2. **Differential pairs** — the equivalences the repo promises:
   vectorized vs scalar positioning, obs-on vs obs-off experiment
   reports (for the selected experiment producers), a
   present-but-disabled chaos stanza vs an absent one, the dense
   round loop vs the event engine under the degenerate workload,
   the sketch-based approximate ranker vs the exact engine (plus the
   exact-mode byte-identity of the k/exclude fast path), and figure
   8's packed checkpoint evaluation vs the scalar ranking reference.
3. **Fuzz drivers** — seeded churn/observation/clustering fuzz with
   scalar↔vectorized cross-checks after every step and input
   shrinking on failure.

Every violation is emitted as a ``check.violation`` trace event
through :mod:`repro.obs` (and counted on ``check.violations``), and
the report renders green-or-first-failure, so CI can upload it as an
artifact and exit non-zero.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.check.differential import (
    DifferentialPair,
    DifferentialRunner,
    Divergence,
    ann_exact_mode_pair,
    ann_exact_pair,
    chaos_stanza_pair,
    dense_event_pair,
    fig8_packed_scalar_pair,
    remap_stanza_pair,
    obs_pair,
    scalar_vector_pair,
    sharded_service_pair,
)
from repro.check.fuzz import FuzzFailure, run_all_fuzz
from repro.check.invariants import InvariantRegistry, Violation, default_registry
from repro.core.clustering import SmfParams
from repro.core.engine import packed_for
from repro.obs import get_observability
from repro.workloads.scenario import Scenario, ScenarioParams


@dataclass(frozen=True)
class SelfCheckConfig:
    """Knobs of one self-check run (defaults: small and fast)."""

    seed: int = 2008
    #: Scale label handed to experiment producers for the obs pairs.
    scale: str = "quick"
    #: Clients / candidates / probe rounds of the invariant-sweep and
    #: differential scenarios (deliberately tiny: the harness checks
    #: machinery, not statistics).
    clients: int = 16
    candidates: int = 8
    probe_rounds: int = 6
    #: Steps per fuzz driver and the seeds swept.
    fuzz_steps: int = 40
    fuzz_seeds: Tuple[int, ...] = (0, 1)
    #: Run the (scenario-building, comparatively slow) differential
    #: pairs; the invariant sweep and fuzz always run.
    differential: bool = True


@dataclass
class SelfCheckReport:
    """Everything one self-check run found (ideally: nothing)."""

    violations: List[Violation] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    fuzz_failures: List[FuzzFailure] = field(default_factory=list)
    invariants_checked: int = 0
    pairs_run: int = 0
    fuzz_drivers_run: int = 0

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not (self.violations or self.divergences or self.fuzz_failures)

    @property
    def failure_count(self) -> int:
        return len(self.violations) + len(self.divergences) + len(self.fuzz_failures)

    def render(self) -> str:
        """The human-readable report the runner prints."""
        lines = [
            "self-check: "
            + ("OK" if self.ok else f"{self.failure_count} FAILURE(S)"),
            f"  invariant checks run: {self.invariants_checked}",
            f"  differential pairs run: {self.pairs_run}",
            f"  fuzz drivers run: {self.fuzz_drivers_run}",
        ]
        if self.violations:
            lines.append(f"invariant violations ({len(self.violations)}):")
            lines.extend(f"  {v}" for v in self.violations)
        if self.divergences:
            lines.append(f"differential divergences ({len(self.divergences)}):")
            lines.extend(f"  {d}" for d in self.divergences)
        if self.fuzz_failures:
            lines.append(f"fuzz failures ({len(self.fuzz_failures)}):")
            lines.extend(f"  {f}" for f in self.fuzz_failures)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly record (the CI artifact format)."""
        return {
            "ok": self.ok,
            "invariants_checked": self.invariants_checked,
            "pairs_run": self.pairs_run,
            "fuzz_drivers_run": self.fuzz_drivers_run,
            "violations": [
                {"invariant": v.invariant, "subject": v.subject, "detail": v.detail}
                for v in self.violations
            ],
            "divergences": [
                {
                    "pair": d.pair,
                    "field": d.field,
                    "left": repr(d.left),
                    "right": repr(d.right),
                }
                for d in self.divergences
            ],
            "fuzz_failures": [
                {
                    "driver": f.driver,
                    "seed": f.seed,
                    "step": f.step,
                    "detail": f.detail,
                    "shrunk": repr(f.shrunk),
                }
                for f in self.fuzz_failures
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _sweep_scenario_invariants(
    config: SelfCheckConfig, registry: InvariantRegistry, report: SelfCheckReport
) -> None:
    """Build a tiny probed scenario and check every live object."""
    scenario = Scenario(
        ScenarioParams(
            seed=config.seed,
            dns_servers=config.clients,
            planetlab_nodes=config.candidates,
            build_meridian=False,
        )
    )
    scenario.run_probe_rounds(config.probe_rounds)
    crp = scenario.crp
    now = scenario.clock.now

    def run(name: str, subject: str, *args: object, **kwargs: object) -> None:
        report.invariants_checked += 1
        report.violations.extend(
            registry.check(name, subject, *args, now=now, **kwargs)
        )

    for node in crp.nodes:
        run("tracker", node, crp.tracker(node))
        ratio_map = crp.ratio_map(node)
        if ratio_map is not None:
            run("ratio_map", node, ratio_map)
    candidate_maps = crp.ratio_maps(scenario.candidate_names)
    population = packed_for(candidate_maps)
    run("engine", "candidate-population", population)

    # The sketch index rides the same population: build it, churn one
    # candidate through the listener path, and check it stayed in sync.
    from repro.core.ann import AnnParams, index_for

    ann_index = index_for(population, AnnParams())
    churned = next(
        (name for name, m in candidate_maps.items() if m is not None), None
    )
    if churned is not None:
        churned_map = candidate_maps[churned]
        population.remove(churned)
        population.add(churned, churned_map)
    run("ann_index", "candidate-ann-index", ann_index, population)
    for node, resolver in sorted(scenario.resolvers.items()):
        run("ttl_cache", node, resolver.cache, now)
    run("service_health", "crp-service", crp)
    obs = get_observability()
    run(
        "health_transitions",
        "crp-service",
        obs.trace.events(kind="health.transition"),
    )
    smf_params = SmfParams(metric=crp.params.metric)
    client_maps = crp.ratio_maps(scenario.client_names)
    result = crp.cluster(scenario.client_names, smf_params=smf_params)
    run("smf_result", "smf-clustering", result, client_maps, smf_params)

    # Prefix-extended windows: restoring a cached shorter window and
    # probing the remainder must be indistinguishable from the straight
    # run above (same params, same schedule) — the promise fig8/fig9's
    # checkpointed probing rests on (DESIGN §17).
    from repro.exec.snapshots import SnapshotStore
    from repro.workloads.scenario import driven_scenario

    prefix_store = SnapshotStore()
    driven_scenario(
        scenario.params, max(1, config.probe_rounds // 2), store=prefix_store
    )
    extended = driven_scenario(
        scenario.params, config.probe_rounds, store=prefix_store
    )
    run("snapshot_restore", "prefix-extended-window", scenario, extended)

    # A second, event-driven scenario exercises the engine end to end
    # (sparse Zipf workload) and checks the loop's own invariant.
    from repro.sim.workload import PoissonZipfWorkload

    evented = Scenario(
        ScenarioParams(
            seed=config.seed,
            dns_servers=config.clients,
            planetlab_nodes=config.candidates,
            build_meridian=False,
        )
    )
    workload = PoissonZipfWorkload(
        evented.crp.active_nodes,
        config.seed,
        aggregate_rate_per_s=len(evented.crp.active_nodes) / 600.0,
    )
    loop = evented.run_events(workload, until_s=config.probe_rounds * 600.0)
    report.invariants_checked += 1
    report.violations.extend(registry.check("event_loop", "event-loop", loop))


def _standard_pairs(
    config: SelfCheckConfig,
    producers: Optional[Mapping[str, Callable[[str], Mapping[str, str]]]],
) -> List[DifferentialPair]:
    params = ScenarioParams(
        seed=config.seed,
        dns_servers=config.clients,
        planetlab_nodes=config.candidates,
        build_meridian=False,
    )
    pairs = [
        scalar_vector_pair(params, probe_rounds=config.probe_rounds),
        chaos_stanza_pair(params, probe_rounds=config.probe_rounds),
        remap_stanza_pair(params, probe_rounds=config.probe_rounds),
        dense_event_pair(params, probe_rounds=config.probe_rounds),
        sharded_service_pair(
            seed=config.seed,
            clients=config.clients * 3,
            candidates=config.candidates,
        ),
        ann_exact_pair(seed=config.seed),
        ann_exact_mode_pair(seed=config.seed),
        fig8_packed_scalar_pair(seed=config.seed),
    ]
    if producers:
        seen: List[Callable[[str], Mapping[str, str]]] = []
        for name in sorted(producers):
            producer = producers[name]
            if producer in seen:  # one producer can serve several keys
                continue
            seen.append(producer)
            pairs.append(obs_pair(name, producer, config.scale))
    return pairs


def run_selfcheck(
    config: SelfCheckConfig = SelfCheckConfig(),
    producers: Optional[Mapping[str, Callable[[str], Mapping[str, str]]]] = None,
    registry: Optional[InvariantRegistry] = None,
    extra_pairs: Sequence[DifferentialPair] = (),
) -> SelfCheckReport:
    """Run the whole battery; see the module docstring.

    ``producers`` maps experiment keys to report producers (the
    runner's table) for the obs-on/off pairs; ``extra_pairs`` lets
    callers bolt on their own differentials; ``registry`` defaults to
    the built-in invariant set.
    """
    if registry is None:
        registry = default_registry()
    report = SelfCheckReport()

    _sweep_scenario_invariants(config, registry, report)

    if config.differential:
        pairs = _standard_pairs(config, producers) + list(extra_pairs)
        runner = DifferentialRunner(pairs)
        report.divergences.extend(runner.run())
        report.pairs_run = len(pairs)

    report.fuzz_failures.extend(
        run_all_fuzz(seeds=config.fuzz_seeds, steps=config.fuzz_steps)
    )
    report.fuzz_drivers_run = 4 * len(config.fuzz_seeds)

    return report
