"""Correctness tooling: machine-checked guarantees over live objects.

The repo promises three equivalences it previously only spot-checked:
the vectorized engine matches the scalar reference (bit-identical
rankings and clusterings), chaos-disabled scenarios are bit-identical
to pre-chaos ones, and observability changes no experiment output.
Systems built on CDN redirection signals live or die on the
correctness of exactly this similarity/clustering machinery, so this
package turns those comments into checks:

* :mod:`repro.check.invariants` — a registry of cheap, registrable
  predicates over live objects (ratio maps, trackers, the packed
  engine, TTL caches, the service health machine, SMF results), each
  violation emitted as a ``check.violation`` trace event;
* :mod:`repro.check.differential` — a :class:`DifferentialRunner`
  that executes an experiment under paired configurations (vectorized
  vs scalar, obs on vs off, chaos stanza present-but-disabled vs
  absent) and reports the first divergent field;
* :mod:`repro.check.fuzz` — seeded fuzz drivers that churn
  populations and observation streams, cross-checking scalar vs
  vectorized after every step, with naive input shrinking on failure;
* :mod:`repro.check.selfcheck` — the orchestrator behind
  ``python -m repro.experiments.runner <exp> --selfcheck``.
"""

from __future__ import annotations

from repro.check.differential import (
    Divergence,
    DifferentialPair,
    DifferentialRunner,
    chaos_stanza_pair,
    dense_event_pair,
    obs_pair,
    remap_stanza_pair,
    scalar_vector_pair,
)
from repro.check.fuzz import (
    FuzzFailure,
    fuzz_clustering,
    fuzz_observations,
    fuzz_ranking,
    fuzz_ratio_maps,
    run_all_fuzz,
)
from repro.check.invariants import (
    InvariantRegistry,
    Violation,
    default_registry,
)
from repro.check.selfcheck import SelfCheckConfig, SelfCheckReport, run_selfcheck

__all__ = [
    "Violation",
    "InvariantRegistry",
    "default_registry",
    "Divergence",
    "DifferentialPair",
    "DifferentialRunner",
    "obs_pair",
    "scalar_vector_pair",
    "chaos_stanza_pair",
    "dense_event_pair",
    "remap_stanza_pair",
    "FuzzFailure",
    "fuzz_ratio_maps",
    "fuzz_observations",
    "fuzz_ranking",
    "fuzz_clustering",
    "run_all_fuzz",
    "SelfCheckConfig",
    "SelfCheckReport",
    "run_selfcheck",
]
