"""Invariant registry: cheap, registrable predicates over live objects.

An *invariant* here is a function that inspects one live object (plus
whatever context it needs — the current simulated time, the maps a
result was computed from) and returns a list of human-readable problem
strings, empty when the object is healthy.  The registry gives each a
name, runs it on demand, and emits every problem as a
``check.violation`` trace event through :mod:`repro.obs`, so a run's
manifest records that it was checked (and what failed).

The built-ins cover the objects whose correctness the positioning
machinery leans on hardest:

``ratio_map``
    Ratios strictly positive, summing to one, with the cached norm
    matching a recomputation.
``tracker``
    The observation log is time-ordered, the change counter is
    consistent with ingests minus drops, and the bound is respected.
``engine``
    The packed CSR view agrees *exactly* with the scalar ratio maps it
    packs: row contents, vocabulary columns, cached norms, name/row
    bijection.
``ttl_cache``
    The cache never serves an expired record, and the read path and
    the purge path classify every entry identically at any instant —
    including exactly at ``expires_at``.
``service_health``
    Per-node health bookkeeping is internally consistent (quarantine
    timestamps exactly when quarantined, recovery counters bounded by
    quarantine counters).
``health_transitions``
    A trace of ``health.transition`` events only contains legal moves
    of the healthy → degraded → quarantined machine.
``smf_result``
    SMF post-conditions: every member's similarity to its center
    exceeds the threshold, clusters are disjoint and at least pairs,
    and every input node is accounted for exactly once.
``snapshot_restore``
    A scenario restored from a probe-trace snapshot matches the
    original: params, simulated time, probe accounting, node sets, and
    per-node tracker logs — and the restored trackers themselves pass
    ``tracker``.
``ann_index``
    A sketch index agrees with the population it listens to: same
    membership, name/row bijection intact, every stored sketch equal
    to a recomputation from the live ratio map, and every bucket
    table's entries consistent with the rows' own keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.clustering import ClusteringResult, SmfParams
from repro.core.engine import PackedPopulation
from repro.core.ratio_map import RatioMap
from repro.core.service import CRPService, NodeState
from repro.core.similarity import similarity
from repro.core.tracker import RedirectionTracker
from repro.dnssim.cache import TtlCache
from repro.obs import Observability, get_observability
from repro.obs.trace import TraceEvent

#: Slack allowed when re-summing ratios (the constructor renormalises
#: exactly; only float accumulation order can move the sum).
_SUM_TOLERANCE = 1e-9

#: Slack allowed between a cached norm and its recomputation.
_NORM_TOLERANCE = 1e-12

#: The legal moves of the service's health state machine.
_LEGAL_TRANSITIONS = frozenset(
    {
        (NodeState.HEALTHY.value, NodeState.DEGRADED.value),
        (NodeState.HEALTHY.value, NodeState.QUARANTINED.value),
        (NodeState.DEGRADED.value, NodeState.QUARANTINED.value),
        (NodeState.DEGRADED.value, NodeState.HEALTHY.value),
        (NodeState.QUARANTINED.value, NodeState.HEALTHY.value),
    }
)


@dataclass(frozen=True)
class Violation:
    """One failed invariant on one subject."""

    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"


#: An invariant implementation: object (plus context) → problem strings.
CheckFn = Callable[..., List[str]]


class InvariantRegistry:
    """Named invariants, checkable on demand.

    ``check`` runs one invariant on one subject and returns the
    violations found; every violation is also emitted as a
    ``check.violation`` trace event (and counted on the
    ``check.violations`` metric) through the active or supplied
    :class:`~repro.obs.Observability`.
    """

    def __init__(self) -> None:
        self._checks: Dict[str, CheckFn] = {}

    def register(self, name: str, check: CheckFn) -> None:
        """Add an invariant (ValueError on a duplicate name)."""
        if name in self._checks:
            raise ValueError(f"invariant {name!r} already registered")
        self._checks[name] = check

    def names(self) -> Tuple[str, ...]:
        """Registered invariant names, sorted."""
        return tuple(sorted(self._checks))

    def __contains__(self, name: str) -> bool:
        return name in self._checks

    def check(
        self,
        name: str,
        subject: str,
        *args: object,
        now: float = 0.0,
        obs: Optional[Observability] = None,
        **kwargs: object,
    ) -> List[Violation]:
        """Run one invariant; returns (and traces) its violations.

        ``subject`` labels what was checked (a node name, ``"cache"``,
        …); ``now`` timestamps the trace events; the remaining
        arguments go to the invariant function.
        """
        try:
            check = self._checks[name]
        except KeyError:
            raise KeyError(f"no invariant named {name!r}") from None
        problems = check(*args, **kwargs)
        obs = obs if obs is not None else get_observability()
        violations = [Violation(name, subject, problem) for problem in problems]
        for violation in violations:
            obs.metrics.counter("check.violations", invariant=name).inc()
            obs.trace.emit(
                "check.violation", now, subject,
                invariant=name, detail=violation.detail,
            )
        return violations


# -- built-in invariants ----------------------------------------------------


def check_ratio_map(ratio_map: RatioMap) -> List[str]:
    """Ratios positive and normalised; cached norm matches."""
    problems: List[str] = []
    if len(ratio_map) == 0:
        return ["ratio map has no entries"]
    total = 0.0
    for replica, ratio in ratio_map.items():
        if not ratio > 0.0:
            problems.append(f"ratio for {replica!r} is {ratio}, not positive")
        total += ratio
    if abs(total - 1.0) > _SUM_TOLERANCE:
        problems.append(f"ratios sum to {total!r}, not 1")
    norm = math.sqrt(sum(v * v for v in ratio_map.values()))
    if abs(norm - ratio_map.norm) > _NORM_TOLERANCE:
        problems.append(f"cached norm {ratio_map.norm!r} != recomputed {norm!r}")
    return problems


def check_tracker(tracker: RedirectionTracker) -> List[str]:
    """Log monotonic in time; version counter consistent with ingests."""
    problems: List[str] = []
    log = tracker.observations
    for previous, current in zip(log, log[1:]):
        if current.at < previous.at:
            problems.append(
                f"log out of order: {current.at} after {previous.at}"
            )
            break
    expected_version = len(log) + tracker.observations_dropped
    if tracker.version != expected_version:
        problems.append(
            f"version {tracker.version} != retained {len(log)} "
            f"+ dropped {tracker.observations_dropped}"
        )
    if (
        tracker.max_observations is not None
        and len(log) > tracker.max_observations
    ):
        problems.append(
            f"log holds {len(log)} observations, bound is {tracker.max_observations}"
        )
    return problems


def check_engine(population: PackedPopulation) -> List[str]:
    """The packed CSR view agrees exactly with its scalar ratio maps."""
    problems: List[str] = []
    view = population._ensure_view()
    indptr = view.indptr
    if len(indptr) != len(view.names) + 1:
        return [f"indptr has {len(indptr)} boundaries for {len(view.names)} rows"]
    if indptr[0] != 0:
        problems.append(f"indptr starts at {indptr[0]}, not 0")
    if (view.lens < 0).any():
        problems.append("indptr is not non-decreasing")
    if len(view.maps) != len(view.names):
        problems.append(
            f"{len(view.maps)} maps packed for {len(view.names)} names"
        )
    if len(population) != len(view.names):
        problems.append(
            f"population reports {len(population)} rows, view has {len(view.names)}"
        )
    for name, row in view.row_of.items():
        if not (0 <= row < len(view.names)) or view.names[row] != name:
            problems.append(f"row_of[{name!r}] = {row} does not map back")
    replicas = population.vocab.replicas()
    width = len(replicas)
    for row, (name, ratio_map) in enumerate(zip(view.names, view.maps)):
        start, end = int(indptr[row]), int(indptr[row + 1])
        columns = view.indices[start:end]
        data = view.data[start:end]
        if len(columns) != len(ratio_map):
            problems.append(
                f"row {name!r} packs {len(columns)} entries, map has {len(ratio_map)}"
            )
            continue
        if len(set(columns.tolist())) != len(columns):
            problems.append(f"row {name!r} has duplicate columns")
            continue
        if len(columns) and (columns.min() < 0 or columns.max() >= width):
            problems.append(f"row {name!r} has columns outside the vocabulary")
            continue
        packed = {replicas[int(c)]: float(v) for c, v in zip(columns, data)}
        for replica, ratio in ratio_map.items():
            if packed.get(replica) != ratio:
                problems.append(
                    f"row {name!r} packs {replica!r} as "
                    f"{packed.get(replica)!r}, map has {ratio!r}"
                )
                break
        if view.norms[row] != ratio_map.norm:
            problems.append(
                f"row {name!r} caches norm {view.norms[row]!r}, "
                f"map has {ratio_map.norm!r}"
            )
    return problems


def check_ttl_cache(cache: TtlCache, now: float) -> List[str]:
    """The read path never serves an expired record, and agrees with
    the purge path about aliveness at any instant (boundary included)."""
    problems: List[str] = []
    if len(cache) > cache.max_entries:
        problems.append(
            f"cache holds {len(cache)} entries, bound is {cache.max_entries}"
        )
    for key, entry in cache.entries():
        name = key[0]
        if not entry.expires_at > entry.stored_at:
            problems.append(
                f"{name!r} expires at {entry.expires_at}, "
                f"stored at {entry.stored_at} (non-positive lifetime)"
            )
        # The documented boundary contract: dead at exactly expires_at.
        contract_alive = now < entry.expires_at
        served = cache.peek_entry(key, now) is not None
        purged = cache.would_purge(key, now)
        if served != contract_alive:
            problems.append(
                f"{name!r} at t={now}: read path serves={served}, "
                f"contract says alive={contract_alive}"
            )
        if purged == served:
            problems.append(
                f"{name!r} at t={now}: read path serves={served} "
                f"but purge path drops={purged} — paths disagree"
            )
        if served:
            records = cache.peek_entry(key, now)
            if any(r.ttl <= 0 for r in records):
                problems.append(f"{name!r} served with non-positive remaining TTL")
    return problems


def check_service_health(service: CRPService) -> List[str]:
    """Per-node health bookkeeping is internally consistent."""
    problems: List[str] = []
    for node in service.nodes:
        health = service.health(node)
        if health.state is NodeState.QUARANTINED:
            if health.quarantined_at is None or health.quarantined_round is None:
                problems.append(
                    f"{node}: quarantined without quarantine timestamp/round"
                )
        elif health.quarantined_at is not None or health.quarantined_round is not None:
            problems.append(
                f"{node}: {health.state.value} but carries quarantine bookkeeping"
            )
        if health.recoveries > health.quarantines:
            problems.append(
                f"{node}: {health.recoveries} recoveries from "
                f"{health.quarantines} quarantines"
            )
        if health.consecutive_failed_rounds < 0:
            problems.append(f"{node}: negative failed-round counter")
    return problems


def check_health_transitions(events: Iterable[TraceEvent]) -> List[str]:
    """A trace of ``health.transition`` events only takes legal moves."""
    problems: List[str] = []
    for event in events:
        if event.kind != "health.transition":
            continue
        src = event.get("src")
        dst = event.get("dst")
        if (src, dst) not in _LEGAL_TRANSITIONS:
            problems.append(
                f"{event.subject}: illegal transition {src} -> {dst} at t={event.ts}"
            )
    return problems


def check_smf_result(
    result: ClusteringResult,
    maps: Mapping[str, Optional[RatioMap]],
    params: Optional[SmfParams] = None,
) -> List[str]:
    """SMF post-conditions over a finished clustering.

    Every member of every cluster is similar enough to its center
    (strictly above the threshold, the join rule), clusters are
    disjoint with at least two members each, and clustered plus
    unclustered is exactly the input population.
    """
    problems: List[str] = []
    if params is None:
        params = result.params
    seen: Dict[str, str] = {}
    for cluster in result.clusters:
        if cluster.size < 2:
            problems.append(f"cluster {cluster.center!r} has size {cluster.size}")
        if cluster.center not in cluster.members:
            problems.append(f"cluster {cluster.center!r} does not contain its center")
        if len(set(cluster.members)) != len(cluster.members):
            problems.append(f"cluster {cluster.center!r} repeats a member")
        for member in cluster.members:
            if member in seen:
                problems.append(
                    f"{member!r} appears in clusters {seen[member]!r} "
                    f"and {cluster.center!r}"
                )
            seen[member] = cluster.center
        if params is None:
            continue
        center_map = maps.get(cluster.center)
        if center_map is None:
            problems.append(f"cluster center {cluster.center!r} has no ratio map")
            continue
        for member in cluster.members:
            if member == cluster.center:
                continue
            member_map = maps.get(member)
            if member_map is None:
                problems.append(f"member {member!r} has no ratio map")
                continue
            score = similarity(member_map, center_map, params.metric)
            if not score > params.threshold:
                problems.append(
                    f"{member!r} joined {cluster.center!r} at similarity "
                    f"{score!r}, threshold {params.threshold}"
                )
    accounted = set(seen) | set(result.unclustered)
    population = set(maps)
    if accounted != population:
        missing = sorted(population - accounted)
        extra = sorted(accounted - population)
        if missing:
            problems.append(f"nodes unaccounted for: {missing[:5]}")
        if extra:
            problems.append(f"unknown nodes in result: {extra[:5]}")
    overlap = set(seen) & set(result.unclustered)
    if overlap:
        problems.append(f"nodes both clustered and unclustered: {sorted(overlap)[:5]}")
    if result.total_nodes != len(maps):
        problems.append(
            f"total_nodes {result.total_nodes} != population {len(maps)}"
        )
    return problems


def check_snapshot_restore(original: object, restored: object) -> List[str]:
    """A restored probe-trace snapshot equals the scenario it captured.

    ``original``/``restored`` are
    :class:`~repro.workloads.scenario.Scenario` objects (typed loosely
    to keep this module import-light).  Checks identity (params repr),
    simulated time, probe accounting, node membership, and per-node
    tracker state — and re-runs :func:`check_tracker` on every restored
    tracker, so a restore that resurrects a corrupt log is caught even
    when it matches the (equally corrupt) original.
    """
    problems: List[str] = []
    if repr(original.params) != repr(restored.params):
        problems.append("restored params repr differs from original")
    if original.clock.now != restored.clock.now:
        problems.append(
            f"restored clock at {restored.clock.now}, original {original.clock.now}"
        )
    if original.crp.probes_issued != restored.crp.probes_issued:
        problems.append(
            f"restored probes_issued {restored.crp.probes_issued} "
            f"!= original {original.crp.probes_issued}"
        )
    original_nodes = set(original.crp.nodes)
    restored_nodes = set(restored.crp.nodes)
    if original_nodes != restored_nodes:
        problems.append(
            f"node sets differ: {sorted(original_nodes ^ restored_nodes)[:5]}"
        )
        return problems
    for node in sorted(original_nodes):
        a = original.crp.tracker(node)
        b = restored.crp.tracker(node)
        if a.version != b.version:
            problems.append(
                f"{node}: tracker version {b.version} != original {a.version}"
            )
        if len(a.observations) != len(b.observations):
            problems.append(
                f"{node}: {len(b.observations)} observations "
                f"!= original {len(a.observations)}"
            )
        elif a.observations != b.observations:
            problems.append(f"{node}: observation log contents differ")
        for problem in check_tracker(b):
            problems.append(f"{node} (restored): {problem}")
    return problems


def check_event_loop(loop: object) -> List[str]:
    """A finished event loop terminated cleanly and dispatched in order.

    ``loop`` is a :class:`~repro.sim.loop.EventLoop` (typed loosely to
    keep this module import-light).  Checks monotone dispatch keys
    (time, then priority, then schedule order — the loop records the
    first regression it ever observes), empty-heap termination, the
    scheduling ledger (scheduled = dispatched + still-queued, with
    out-of-horizon events suppressed rather than queued), and that the
    clock landed on the horizon.
    """
    problems: List[str] = []
    if loop.order_violation is not None:
        problems.append(loop.order_violation)
    if loop.finished and len(loop) != 0:
        problems.append(
            f"finished loop still holds {len(loop)} queued events"
        )
    if loop.scheduled != loop.dispatched + len(loop):
        problems.append(
            f"scheduling ledger broken: {loop.scheduled} scheduled != "
            f"{loop.dispatched} dispatched + {len(loop)} queued"
        )
    by_kind_total = sum(loop.dispatched_by_kind.values())
    if by_kind_total != loop.dispatched:
        problems.append(
            f"per-kind dispatch counts sum to {by_kind_total}, "
            f"not {loop.dispatched}"
        )
    if loop.max_heap_depth < len(loop):
        problems.append(
            f"max heap depth {loop.max_heap_depth} below current "
            f"depth {len(loop)}"
        )
    if loop.finished and loop.clock.now < loop.horizon_s:
        problems.append(
            f"finished loop left the clock at {loop.clock.now}, "
            f"short of the horizon {loop.horizon_s}"
        )
    if loop.last_dispatched_key is not None:
        at = loop.last_dispatched_key[0]
        if at >= loop.horizon_s:
            problems.append(
                f"dispatched an event at {at}, past the horizon "
                f"{loop.horizon_s}"
            )
    return problems


def check_ann_index(index: object, population: PackedPopulation) -> List[str]:
    """A sketch index is internally consistent and in sync with its
    population.

    ``index`` is a :class:`~repro.core.ann.SketchIndex` (typed loosely
    to keep this module import-light).  Checks the name/row bijection,
    membership equality with the population, stored-sketch equality
    with a fresh recomputation from each live ratio map (so a listener
    bug or a botched swap-removal repair shows up no matter how the
    index got here), and bucket-table consistency: every bucket entry
    points at a live row whose own key selects that bucket, and the
    tables together hold exactly ``tables × rows`` entries.
    """
    problems: List[str] = []
    names = index._names
    row_of = index._row_of
    if len(row_of) != len(names):
        problems.append(
            f"{len(row_of)} row mappings for {len(names)} names"
        )
    for name, row in row_of.items():
        if not (0 <= row < len(names)) or names[row] != name:
            problems.append(f"row_of[{name!r}] = {row} does not map back")
    view = population._ensure_view()
    if set(names) != set(view.names):
        drift = sorted(set(names) ^ set(view.names))
        problems.append(f"membership differs from population: {drift[:5]}")
        return problems
    maps = dict(zip(view.names, view.maps))
    for name, row in row_of.items():
        fresh = index.sketch(maps[name])
        if not (index._rows[row] == fresh).all():
            problems.append(f"stored sketch for {name!r} != recomputation")
    total_entries = 0
    for table_index, table in enumerate(index._buckets):
        for key, members in table.items():
            total_entries += len(members)
            if len(set(members)) != len(members):
                problems.append(
                    f"table {table_index} bucket {key:#x} repeats a row"
                )
            for row in members:
                if not 0 <= row < len(names):
                    problems.append(
                        f"table {table_index} bucket {key:#x} holds "
                        f"dead row {row}"
                    )
                    continue
                expected = index._keys_of(index._rows[row])[table_index]
                if expected != key:
                    problems.append(
                        f"{names[row]!r} filed under table {table_index} "
                        f"bucket {key:#x}, its key is {expected:#x}"
                    )
    expected_entries = len(index._buckets) * len(names)
    if total_entries != expected_entries:
        problems.append(
            f"bucket tables hold {total_entries} entries, "
            f"expected {expected_entries}"
        )
    return problems


def default_registry() -> InvariantRegistry:
    """A fresh registry with every built-in invariant registered."""
    registry = InvariantRegistry()
    registry.register("ratio_map", check_ratio_map)
    registry.register("tracker", check_tracker)
    registry.register("engine", check_engine)
    registry.register("ttl_cache", check_ttl_cache)
    registry.register("service_health", check_service_health)
    registry.register("health_transitions", check_health_transitions)
    registry.register("smf_result", check_smf_result)
    registry.register("snapshot_restore", check_snapshot_restore)
    registry.register("event_loop", check_event_loop)
    registry.register("ann_index", check_ann_index)
    return registry
