"""Seeded fuzz drivers: churn the machinery, cross-check every step.

Each driver generates a random-but-deterministic input sequence (ratio
maps, observation streams, population churn), applies it step by step,
and after *every* step cross-checks the layers that promise
equivalence: ``rank_candidates`` and ``select_top_k`` scalar vs
vectorized, ``smf_cluster`` scalar vs vectorized, windowed and decayed
ratio maps against hand-computed references, plus the structural
invariants from :mod:`repro.check.invariants`.

On failure a driver *shrinks* its input naively — greedily dropping
one operation at a time while the failure still reproduces — and
returns a :class:`FuzzFailure` carrying the minimal reproducing
sequence, so a red self-check is immediately actionable.

Everything is seeded through :mod:`numpy.random` generators; the same
seed always fuzzes the same way.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.check.invariants import (
    check_ratio_map,
    check_smf_result,
    check_tracker,
)
from repro.core.clustering import CenterPolicy, SmfParams, smf_cluster
from repro.core.engine import PackedPopulation
from repro.core.ratio_map import RatioMap
from repro.core.selection import rank_candidates, select_top_k
from repro.core.similarity import SimilarityMetric, similarity
from repro.core.tracker import RedirectionTracker

#: Score agreement between the scalar and vectorized paths.
_SCORE_TOLERANCE = 1e-12

#: Replica pools: overlapping ("a*") and disjoint-prone ("b*") so
#: orthogonal maps (similarity 0) occur alongside heavy overlaps.
_REPLICAS = [f"a{i}" for i in range(6)] + [f"b{i}" for i in range(6)]

_METRICS = tuple(SimilarityMetric)

#: One fuzz operation: ("add"|"update", node, counts) / ("remove", node).
Op = Tuple


@dataclass(frozen=True)
class FuzzFailure:
    """One reproducing fuzz counterexample, shrunk."""

    driver: str
    seed: int
    step: int
    detail: str
    #: The minimal operation sequence that still reproduces ``detail``.
    shrunk: Tuple[Op, ...]

    def __str__(self) -> str:
        return (
            f"[{self.driver} seed={self.seed}] step {self.step}: {self.detail} "
            f"(shrunk to {len(self.shrunk)} ops: {self.shrunk!r})"
        )


def _random_counts(rng: np.random.Generator) -> Dict[str, int]:
    size = int(rng.integers(1, 6))
    replicas = rng.choice(len(_REPLICAS), size=size, replace=False)
    return {_REPLICAS[int(r)]: int(rng.integers(1, 50)) for r in replicas}


def _random_map(rng: np.random.Generator) -> RatioMap:
    return RatioMap.from_counts(_random_counts(rng))


# -- ranking fuzz ------------------------------------------------------------


def _apply_churn(ops: Sequence[Op]) -> Dict[str, RatioMap]:
    """Replay a churn sequence into a population mapping.

    Tolerant of sequences that shrinking has made inconsistent
    (removing an absent node is a no-op), so the shrink search space
    stays closed under deletion.
    """
    maps: Dict[str, RatioMap] = {}
    for op in ops:
        kind = op[0]
        if kind == "remove":
            maps.pop(op[1], None)
        else:  # "add" / "update"
            maps[op[1]] = RatioMap.from_counts(dict(op[2]))
    return maps


def _check_ranking_once(
    maps: Dict[str, RatioMap], client: RatioMap, k: int
) -> Optional[str]:
    """Cross-check one (population, client) pair; None when clean."""
    if not maps:
        return None
    for metric in _METRICS:
        vectorized = rank_candidates(client, maps, metric)
        scalar = rank_candidates(client, maps, metric, vectorized=False)
        if [r.name for r in vectorized] != [r.name for r in scalar]:
            return (
                f"rank order diverged ({metric.value}): "
                f"{[r.name for r in vectorized]} != {[r.name for r in scalar]}"
            )
        for vec, ref in zip(vectorized, scalar):
            if not math.isclose(
                vec.score, ref.score, rel_tol=0.0, abs_tol=_SCORE_TOLERANCE
            ):
                return (
                    f"score diverged ({metric.value}) for {vec.name}: "
                    f"{vec.score!r} != {ref.score!r}"
                )
        top = select_top_k(client, maps, k, metric)
        if top != vectorized[: min(k, len(vectorized))]:
            return (
                f"select_top_k({k}) is not a prefix of rank_candidates "
                f"({metric.value}): {top!r}"
            )
        # Memo hit must return an equal, defensively copied result.
        again = rank_candidates(client, maps, metric)
        if again != vectorized:
            return f"memoised ranking differs from first call ({metric.value})"
        if vectorized:
            again.pop()
            if rank_candidates(client, maps, metric) != vectorized:
                return f"memoised ranking was not defensively copied ({metric.value})"
    return None


def _ranking_failure_at(ops: Sequence[Op], client: RatioMap, k: int) -> Optional[str]:
    """The problem after replaying all of ``ops``, if any."""
    return _check_ranking_once(_apply_churn(ops), client, k)


def fuzz_ranking(seed: int = 0, steps: int = 40) -> Optional[FuzzFailure]:
    """Churn a population, cross-checking the ranking paths each step."""
    rng = np.random.default_rng(seed)
    node_pool = [f"n{i}" for i in range(10)]
    client = _random_map(rng)
    k = int(rng.integers(1, 8))
    ops: List[Op] = []
    for step in range(steps):
        roll = rng.random()
        current = _apply_churn(ops)
        if roll < 0.2 and current:
            victim = sorted(current)[int(rng.integers(0, len(current)))]
            ops.append(("remove", victim))
        elif roll < 0.4 and current:
            victim = sorted(current)[int(rng.integers(0, len(current)))]
            ops.append(("update", victim, tuple(_random_counts(rng).items())))
        else:
            name = node_pool[int(rng.integers(0, len(node_pool)))]
            ops.append(("add", name, tuple(_random_counts(rng).items())))
        detail = _ranking_failure_at(ops, client, k)
        if detail is not None:
            shrunk = _shrink(ops, lambda o: _ranking_failure_at(o, client, k) is not None)
            return FuzzFailure("ranking", seed, step, detail, tuple(shrunk))
    return None


# -- clustering fuzz ---------------------------------------------------------


def fuzz_clustering(seed: int = 0, steps: int = 15) -> Optional[FuzzFailure]:
    """Random populations and parameters through both SMF paths."""
    rng = np.random.default_rng(seed)
    for step in range(steps):
        population = {
            f"n{i}": _random_map(rng) for i in range(int(rng.integers(2, 14)))
        }
        params = SmfParams(
            threshold=float(rng.choice([0.01, 0.1, 0.3, 0.5])),
            metric=_METRICS[int(rng.integers(0, len(_METRICS)))],
            center_policy=CenterPolicy.STRONGEST
            if rng.random() < 0.7
            else CenterPolicy.RANDOM,
            second_pass=bool(rng.random() < 0.8),
            seed=int(rng.integers(0, 4)),
        )
        vectorized = smf_cluster(population, params)
        scalar = smf_cluster(population, params, vectorized=False)
        detail: Optional[str] = None
        if vectorized.clusters != scalar.clusters:
            detail = "clusters diverged between vectorized and scalar SMF"
        elif vectorized.unclustered != scalar.unclustered:
            detail = "unclustered sets diverged between vectorized and scalar SMF"
        else:
            problems = check_smf_result(vectorized, population, params)
            if problems:
                detail = f"SMF post-condition failed: {problems[0]}"
        if detail is not None:
            ops = tuple(
                ("add", name, tuple(_exact_counts(population[name])))
                for name in sorted(population)
            )
            return FuzzFailure("clustering", seed, step, detail, ops)
    return None


def _exact_counts(ratio_map: RatioMap) -> List[Tuple[str, float]]:
    """A reproducible stand-in for a map's construction input."""
    return sorted(ratio_map.items())


# -- observation-stream fuzz -------------------------------------------------


def _window_reference(
    observations: Sequence[Tuple[float, str, Tuple[str, ...]]],
    window_probes: Optional[int],
) -> Optional[RatioMap]:
    """The windowed ratio map computed the obvious way."""
    window = list(observations)
    if window_probes is not None:
        window = window[-window_probes:]
    if not window:
        return None
    counts: Counter = Counter()
    for _, _, addresses in window:
        counts.update(addresses)
    return RatioMap.from_counts(counts)


def _observations_failure_at(
    stream: Sequence[Tuple[float, str, Tuple[str, ...]]],
) -> Optional[str]:
    """Replay a stream into a tracker and cross-check its windows."""
    tracker = RedirectionTracker("fuzz-node")
    for at, name, addresses in stream:
        tracker.observe(at, name, addresses)
    problems = check_tracker(tracker)
    if problems:
        return f"tracker invariant failed: {problems[0]}"
    for window in (None, 1, 3, 10):
        produced = tracker.ratio_map(window_probes=window)
        expected = _window_reference(stream, window)
        if (produced is None) != (expected is None):
            return f"window={window}: map presence diverged from reference"
        if produced is not None:
            if dict(produced) != dict(expected):
                return f"window={window}: map diverged from reference"
            map_problems = check_ratio_map(produced)
            if map_problems:
                return f"window={window}: {map_problems[0]}"
    if stream:
        # An explicit mid-log ``now`` must not erase newer probes:
        # every address observed at or after ``now`` stays in the
        # decayed map's support (future observations clamp to full
        # weight; only genuinely old ones may fall below the floor).
        mid = stream[len(stream) // 2][0]
        decayed = tracker.decayed_ratio_map(half_life_seconds=600.0, now=mid)
        if decayed is None:
            return "decayed map vanished under a mid-log now"
        fresh = {a for at, _, addresses in stream if at >= mid for a in addresses}
        missing = fresh - set(decayed)
        if missing:
            return (
                f"decayed map with mid-log now dropped fresh addresses: "
                f"{sorted(missing)[:3]}"
            )
        problems = check_ratio_map(decayed)
        if problems:
            return f"decayed map: {problems[0]}"
    return None


def fuzz_observations(seed: int = 0, steps: int = 40) -> Optional[FuzzFailure]:
    """Random observation streams through the tracker's window logic."""
    rng = np.random.default_rng(seed)
    names = ("cdn-a.test", "cdn-b.test")
    stream: List[Tuple[float, str, Tuple[str, ...]]] = []
    now = 0.0
    for step in range(steps):
        now += float(rng.uniform(0.0, 900.0))
        name = names[int(rng.integers(0, len(names)))]
        count = int(rng.integers(1, 4))
        picks = rng.choice(len(_REPLICAS), size=count, replace=False)
        addresses = tuple(_REPLICAS[int(p)] for p in picks)
        stream.append((now, name, addresses))
        detail = _observations_failure_at(stream)
        if detail is not None:
            shrunk = _shrink(
                stream, lambda s: _observations_failure_at(s) is not None
            )
            return FuzzFailure("observations", seed, step, detail, tuple(shrunk))
    return None


# -- ratio-map fuzz ----------------------------------------------------------


def fuzz_ratio_maps(seed: int = 0, steps: int = 60) -> Optional[FuzzFailure]:
    """Random maps through construction, merging and the packed engine."""
    rng = np.random.default_rng(seed)
    for step in range(steps):
        a = _random_map(rng)
        b = _random_map(rng)
        detail: Optional[str] = None
        for candidate in (a, b, a.merged_with(b, weight=float(rng.uniform(0.1, 0.9)))):
            problems = check_ratio_map(candidate)
            if problems:
                detail = problems[0]
                break
        if detail is None:
            packed = PackedPopulation({"a": a, "b": b})
            for metric in _METRICS:
                scores = packed.scores(a, metric)
                for row, name in enumerate(packed.names):
                    expected = similarity(a, {"a": a, "b": b}[name], metric)
                    if not math.isclose(
                        float(scores[row]), expected, rel_tol=0.0,
                        abs_tol=_SCORE_TOLERANCE,
                    ):
                        detail = (
                            f"packed score diverged ({metric.value}) for {name}: "
                            f"{float(scores[row])!r} != {expected!r}"
                        )
                        break
                if detail is not None:
                    break
        if detail is not None:
            ops = (
                ("add", "a", tuple(_exact_counts(a))),
                ("add", "b", tuple(_exact_counts(b))),
            )
            return FuzzFailure("ratio_maps", seed, step, detail, ops)
    return None


# -- shrinking ---------------------------------------------------------------


def _shrink(items: Sequence, reproduces) -> List:
    """Naive greedy shrinking: drop one item at a time while the
    failure keeps reproducing.  Quadratic, but counterexamples are
    small and the predicate is cheap."""
    current = list(items)
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1 :]
            try:
                still_fails = reproduces(candidate)
            except Exception:
                still_fails = True  # a crash reproduces the failure too
            if still_fails:
                current = candidate
                changed = True
                break
    return current


# -- orchestration -----------------------------------------------------------


def run_all_fuzz(
    seeds: Sequence[int] = (0, 1), steps: int = 40
) -> List[FuzzFailure]:
    """Every driver over every seed; the failures found (usually none)."""
    failures: List[FuzzFailure] = []
    for seed in seeds:
        for driver in (fuzz_ratio_maps, fuzz_observations, fuzz_ranking, fuzz_clustering):
            failure = driver(seed=seed, steps=steps)
            if failure is not None:
                failures.append(failure)
    return failures
