"""Deterministic chaos: seeded fault schedules over every substrate.

The reproduction's failure story used to be scattered — a static
``failure_rate`` on resolvers, manual ``ReplicaServer.fail()`` calls,
Meridian's own :class:`~repro.meridian.failures.FailurePlan`.  This
package unifies them behind one seeded scheduler:

* :class:`~repro.faults.schedule.FaultSchedule` draws failure episodes
  (resolver SERVFAIL bursts, authoritative outages, replica outages,
  mapping staleness, regional degradation) from per-target Poisson
  processes on the simulated clock.
* :class:`~repro.faults.controller.ChaosController` enacts the
  schedule: as the clock crosses episode boundaries it flips the
  substrate knobs on and back off, depth-counting overlaps.

Fault episodes are *transient* — they end and the old world comes
back.  :mod:`repro.faults.remap` adds the *permanent* counterpart:
seeded structural-change schedules (region rehomes, replica
migrations, cluster launches/retires) enacted as one-way transitions
by :class:`~repro.faults.remap.RemapController`.

The layer is strictly opt-in: a scenario without a controller touches
none of these code paths and stays bit-identical under the same seed.
"""

from repro.faults.controller import ChaosController
from repro.faults.remap import (
    REMAP_KINDS,
    RemapController,
    RemapEvent,
    RemapKind,
    RemapParams,
    RemapSchedule,
)
from repro.faults.schedule import (
    ENACTED_KINDS,
    ChaosParams,
    EpisodeParams,
    FaultEpisode,
    FaultKind,
    FaultSchedule,
    episodes_from_failure_plan,
)

__all__ = [
    "ENACTED_KINDS",
    "REMAP_KINDS",
    "ChaosController",
    "ChaosParams",
    "EpisodeParams",
    "FaultEpisode",
    "FaultKind",
    "FaultSchedule",
    "RemapController",
    "RemapEvent",
    "RemapKind",
    "RemapParams",
    "RemapSchedule",
    "episodes_from_failure_plan",
]
