"""CDN remapping: permanent structural change, scheduled and enacted.

The chaos substrate (:mod:`repro.faults.schedule`) injects *transient*
faults — episodes that end and restore the old world.  Real CDNs also
change *structurally*: they re-home whole regions to different serving
infrastructure, migrate replicas between POPs, and launch or retire
replica clusters.  YouLighter (PAPERS.md) shows such changes are
common enough to matter and detectable from the outside; for CRP they
are the harder robustness question, because the ground truth itself
moves and the pre-change ratio maps become *wrong*, not merely noisy.

This module supplies the injection side:

* :class:`RemapEvent` — one typed structural event at a simulated time.
* :class:`RemapParams` / :class:`RemapSchedule` — a seeded generator of
  events inside a configurable band of the horizon (changes land
  mid-run so there is history before and recovery room after).
* :class:`RemapController` — enacts events as permanent transitions on
  the live :class:`~repro.cdn.mapping.MappingSystem` /
  :class:`~repro.cdn.replica.ReplicaDeployment`, invalidating mapping
  caches so the new world takes effect immediately rather than leaking
  through stale pools.

Determinism: event generation draws from per-kind streams
(``derive_rng(seed, "remap", kind)``), so changing one kind's count
never perturbs another kind's times or targets.  Enactment draws (new
host placement) come from a separate ``"enact"`` stream.  A zero
magnitude (``params.scaled(0.0)``) generates an empty schedule, which
the self-check harness asserts is bit-identical to having no schedule
at all.

The detection and recovery sides live in :mod:`repro.core.change` and
:class:`~repro.core.service.CRPService.invalidate_windows`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.mapping import MappingSystem
from repro.cdn.replica import EDGE_PREFIX, ReplicaDeployment, ReplicaServer
from repro.netsim.rng import derive_rng
from repro.netsim.topology import HostKind, Topology
from repro.obs import Observability, get_observability


class RemapKind(str, Enum):
    """The typed structural changes a CDN can undergo."""

    #: A region's resolvers are mapped away from their local replicas.
    REGION_REHOME = "region_rehome"
    #: A replica keeps its address but moves to a different POP/AS.
    REPLICA_MIGRATION = "replica_migration"
    #: A new replica cluster lights up in a metro.
    CLUSTER_LAUNCH = "cluster_launch"
    #: A metro's edge replicas are permanently retired.
    CLUSTER_RETIRE = "cluster_retire"


#: All remap kinds, in enactment-stream order.
REMAP_KINDS: Tuple[RemapKind, ...] = (
    RemapKind.REGION_REHOME,
    RemapKind.REPLICA_MIGRATION,
    RemapKind.CLUSTER_LAUNCH,
    RemapKind.CLUSTER_RETIRE,
)


@dataclass(frozen=True)
class RemapEvent:
    """One structural change at a simulated time.

    ``target`` is a region value for rehomes, a replica address for
    migrations, and a metro name for launches/retires.
    ``destination`` is the metro a migration moves to or a launch
    lights up in; ``size`` is the number of replicas a launch adds.
    """

    kind: RemapKind
    at: float
    target: str
    destination: str = ""
    size: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"remap event cannot start before 0: {self.at}")


@dataclass(frozen=True)
class RemapParams:
    """How much structural change a horizon sees.

    ``migration_fraction`` is a fraction of the edge fleet (so impact
    scales with deployment size); the other knobs are absolute counts.
    Events land uniformly inside ``window`` (fractions of the horizon),
    leaving a pre-change baseline and post-change recovery room.
    """

    region_rehomes: int = 2
    migration_fraction: float = 0.25
    cluster_launches: int = 2
    cluster_retires: int = 4
    launch_size: int = 6
    horizon_s: float = 86_400.0
    window: Tuple[float, float] = (0.3, 0.55)

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if not 0.0 <= self.migration_fraction <= 1.0:
            raise ValueError("migration_fraction must be in [0, 1]")
        lo, hi = self.window
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError(f"window must satisfy 0 <= lo <= hi <= 1, got {self.window}")

    def scaled(self, factor: float) -> "RemapParams":
        """Event volume multiplied by ``factor`` (the sweep magnitude).

        Factor 0 produces a schedule with no events at all — the
        differential self-check asserts that is indistinguishable from
        having no remap schedule.
        """
        if factor < 0:
            raise ValueError(f"factor cannot be negative, got {factor}")
        return replace(
            self,
            region_rehomes=int(round(self.region_rehomes * factor)),
            migration_fraction=min(1.0, self.migration_fraction * factor),
            cluster_launches=int(round(self.cluster_launches * factor)),
            cluster_retires=int(round(self.cluster_retires * factor)),
        )


@dataclass(frozen=True)
class RemapSchedule:
    """A deterministic, time-ordered list of structural changes."""

    events: Tuple[RemapEvent, ...] = ()
    horizon_s: float = 86_400.0

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: RemapKind) -> List[RemapEvent]:
        """Events of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    @classmethod
    def generate(
        cls,
        regions: Sequence[str],
        replica_addresses: Sequence[str],
        metros: Sequence[str],
        params: RemapParams,
        seed: int,
    ) -> "RemapSchedule":
        """Draw a seeded schedule over the given targets.

        Each kind draws from its own RNG stream, so tuning one kind's
        count never moves another kind's events.  Targets are drawn
        without replacement (counts are clipped to the target space).
        """
        events: List[RemapEvent] = []
        lo, hi = params.window

        def times(rng, count: int) -> List[float]:
            span = (hi - lo) * params.horizon_s
            raw = lo * params.horizon_s + rng.random(count) * span
            return sorted(float(t) for t in raw)

        def pick(rng, pool: Sequence[str], count: int) -> List[str]:
            count = min(count, len(pool))
            if count == 0:
                return []
            chosen = rng.choice(len(pool), size=count, replace=False)
            return [pool[int(i)] for i in chosen]

        rng = derive_rng(seed, "remap", RemapKind.REGION_REHOME.value)
        targets = pick(rng, list(regions), params.region_rehomes)
        for at, region in zip(times(rng, len(targets)), targets):
            events.append(RemapEvent(RemapKind.REGION_REHOME, at, region))

        rng = derive_rng(seed, "remap", RemapKind.REPLICA_MIGRATION.value)
        count = int(round(params.migration_fraction * len(replica_addresses)))
        targets = pick(rng, list(replica_addresses), count)
        for at, address in zip(times(rng, len(targets)), targets):
            destination = metros[int(rng.integers(0, len(metros)))] if metros else ""
            events.append(
                RemapEvent(RemapKind.REPLICA_MIGRATION, at, address, destination)
            )

        rng = derive_rng(seed, "remap", RemapKind.CLUSTER_LAUNCH.value)
        targets = pick(rng, list(metros), params.cluster_launches)
        for at, metro in zip(times(rng, len(targets)), targets):
            events.append(
                RemapEvent(
                    RemapKind.CLUSTER_LAUNCH, at, metro, metro, params.launch_size
                )
            )

        rng = derive_rng(seed, "remap", RemapKind.CLUSTER_RETIRE.value)
        targets = pick(rng, list(metros), params.cluster_retires)
        for at, metro in zip(times(rng, len(targets)), targets):
            events.append(RemapEvent(RemapKind.CLUSTER_RETIRE, at, metro))

        events.sort(key=lambda e: (e.at, e.kind.value, e.target))
        return cls(events=tuple(events), horizon_s=params.horizon_s)


class RemapController:
    """Enacts a remap schedule as permanent substrate transitions.

    Mirrors :class:`~repro.faults.controller.ChaosController`'s driving
    contract — ``sync(now)`` replays all not-yet-applied events up to
    ``now`` in time order and must never go backwards;
    ``pending_event_times`` feeds the event-driven path — but there is
    no revert side: remap events have no end.
    """

    def __init__(
        self,
        schedule: RemapSchedule,
        *,
        topology: Topology,
        deployment: ReplicaDeployment,
        mapping: MappingSystem,
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.schedule = schedule
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        self._metrics = obs.metrics
        self._topology = topology
        self._deployment = deployment
        self._mapping = mapping
        self._rng = derive_rng(seed, "remap", "enact")
        self._cursor = 0
        self._now = float("-inf")
        self._host_serial = 0
        self.applied: List[RemapEvent] = []
        self.events_applied: Counter = Counter()
        self.replicas_migrated = 0
        self.replicas_launched = 0
        self.replicas_retired = 0

    # -- state -------------------------------------------------------------

    @property
    def applied_times(self) -> List[float]:
        """Times of enacted events, in order (detection-lag baseline)."""
        return [event.at for event in self.applied]

    def counters(self) -> Dict[str, int]:
        """Applied event counts per kind (flat, for export)."""
        flat: Dict[str, int] = {}
        for kind, count in sorted(self.events_applied.items()):
            flat[f"applied.{kind.value}"] = count
        flat["replicas_migrated"] = self.replicas_migrated
        flat["replicas_launched"] = self.replicas_launched
        flat["replicas_retired"] = self.replicas_retired
        return flat

    def pending_event_times(self, until: Optional[float] = None) -> List[float]:
        """Distinct not-yet-applied event timestamps, in order."""
        times: List[float] = []
        for event in self.schedule.events[self._cursor :]:
            if until is not None and event.at >= until:
                break
            if not times or times[-1] != event.at:
                times.append(event.at)
        return times

    # -- enactment ---------------------------------------------------------

    def sync(self, now: float) -> int:
        """Enact all events with ``at <= now``; returns how many."""
        if now < self._now:
            raise ValueError(f"remap cannot run backwards: {now} < {self._now}")
        self._now = now
        applied = 0
        while self._cursor < len(self.schedule.events):
            event = self.schedule.events[self._cursor]
            if event.at > now:
                break
            self._cursor += 1
            self._apply(event)
            applied += 1
        return applied

    def _apply(self, event: RemapEvent) -> None:
        changed = {
            RemapKind.REGION_REHOME: self._rehome,
            RemapKind.REPLICA_MIGRATION: self._migrate,
            RemapKind.CLUSTER_LAUNCH: self._launch,
            RemapKind.CLUSTER_RETIRE: self._retire,
        }[event.kind](event)
        if not changed:
            return
        self.applied.append(event)
        self.events_applied[event.kind] += 1
        self._metrics.counter("remap.events", kind=event.kind.value).inc()
        self._trace.emit(
            "remap.injected",
            event.at,
            event.target,
            kind=event.kind.value,
            destination=event.destination,
            size=event.size,
        )

    def _rehome(self, event: RemapEvent) -> bool:
        if event.target in self._mapping.rehomed_regions:
            return False
        self._mapping.rehome_region(event.target)
        return True

    def _new_replica_host(self, metro_name: str, label: str):
        """A fresh replica host in a metro, on a regional tier-2 AS."""
        metro = self._topology.world.metro(metro_name)
        providers = self._topology.registry.tier2_in_region(metro.region)
        asn = (
            providers[int(self._rng.integers(0, len(providers)))].asn
            if providers
            else None
        )
        self._host_serial += 1
        return self._topology.create_host(
            f"remap-{label}-{metro_name}-{self._host_serial}",
            HostKind.REPLICA,
            metro,
            self._rng,
            asn=asn,
        )

    def _migrate(self, event: RemapEvent) -> bool:
        if not self._deployment.knows_address(event.target) or not event.destination:
            return False
        host = self._new_replica_host(event.destination, "mig")
        self._deployment.migrate(event.target, host)
        self._mapping.invalidate()
        self.replicas_migrated += 1
        return True

    def _launch(self, event: RemapEvent) -> bool:
        if event.size < 1:
            return False
        for _ in range(event.size):
            host = self._new_replica_host(event.target, "new")
            # Second octets 250+ are reserved for launched clusters:
            # deploy_replicas never goes past network_id*4 + 3 <= 243,
            # so launch addresses can never collide with the seed fleet.
            serial = self.replicas_launched
            address = (
                f"{EDGE_PREFIX}.{250 + ((serial >> 14) & 3)}"
                f".{(serial >> 7) & 127}.{serial & 127}"
            )
            self._deployment.add(ReplicaServer(host, address))
            self.replicas_launched += 1
        self._mapping.invalidate()
        return True

    def _retire(self, event: RemapEvent) -> bool:
        addresses = sorted(
            replica.address
            for replica in self._deployment.edge
            if replica.host.metro.name == event.target
        )
        # Never retire the last edge replicas standing.
        headroom = len(self._deployment.edge) - len(addresses)
        if headroom < self._mapping.params.answer_size:
            return False
        if not addresses:
            return False
        for address in addresses:
            self._deployment.retire(address)
            self.replicas_retired += 1
        self._mapping.invalidate()
        return True
