"""Seeded fault schedules: when things break, for how long, how badly.

The paper's headline comparison runs against a *flaky* deployed
Meridian (Section V-A catalogues restarts, never-joined nodes and
site-isolated pairs), and CRP's selling point is that a positioning
service built on passive CDN observation keeps working while
direct-measurement systems wedge.  Reproducing that claim needs more
than the scattered failure knobs the substrates already expose
(``RecursiveResolver.failure_rate``, ``ReplicaServer.fail()``, the
Meridian :class:`~repro.meridian.failures.FailurePlan`): it needs a
single, deterministic source of *failure episodes* in simulated time.

A :class:`FaultSchedule` is exactly that: a sorted list of
:class:`FaultEpisode` rows, one per (kind, target) outage window, drawn
from seeded Poisson processes — per-target arrival rate, exponential
durations — over an experiment horizon.  Because each (kind, target)
stream is seeded independently (via :func:`~repro.netsim.rng.derive_rng`),
adding targets or kinds never perturbs existing streams, and the same
seed always yields the same chaos.

The schedule is pure data.  Enactment — flipping the substrate knobs on
and off as the clock crosses episode boundaries — is the
:class:`~repro.faults.controller.ChaosController`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.meridian.failures import FailurePlan, FailureRates
from repro.netsim.rng import derive_rng


class FaultKind(str, Enum):
    """The failure modes the chaos layer can inject."""

    #: A resolver times out / SERVFAILs a share of queries for a while
    #: (upgrades the static ``failure_rate`` to a time-varying episode).
    RESOLVER_FLAKY = "resolver-flaky"
    #: An authoritative DNS server answers nothing but SERVFAIL.
    AUTHORITY_OUTAGE = "authority-outage"
    #: A CDN replica goes dark; the mapping routes around it next epoch.
    REPLICA_OUTAGE = "replica-outage"
    #: The mapping system's measurement backend wedges: rankings freeze
    #: at the last measured epoch (served stale until recovery).
    MAPPING_STALE = "mapping-stale"
    #: A region's paths degrade (congestion spike / soft partition).
    REGIONAL_CONGESTION = "regional-congestion"
    #: Meridian deployment pathologies (enacted by the overlay through
    #: its FailurePlan; carried here so one schedule reports everything).
    MERIDIAN_RESTART = "meridian-restart"
    MERIDIAN_NEVER_JOINED = "meridian-never-joined"


#: Kinds the controller enacts directly (the Meridian kinds are enacted
#: by the overlay consulting its FailurePlan and are reporting-only).
ENACTED_KINDS = (
    FaultKind.RESOLVER_FLAKY,
    FaultKind.AUTHORITY_OUTAGE,
    FaultKind.REPLICA_OUTAGE,
    FaultKind.MAPPING_STALE,
    FaultKind.REGIONAL_CONGESTION,
)


@dataclass(frozen=True)
class FaultEpisode:
    """One failure window: a kind, a target, a time span, a magnitude.

    ``intensity`` is kind-specific: a failure probability for resolver
    flakiness, extra milliseconds for regional congestion, unused (1.0)
    for binary outages.
    """

    kind: FaultKind
    target: str
    start: float
    duration: float
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"episode cannot start before t=0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"episode duration must be positive, got {self.duration}")
        if self.intensity < 0:
            raise ValueError(f"intensity cannot be negative, got {self.intensity}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class EpisodeParams:
    """The seeded process one fault kind's episodes are drawn from."""

    #: Poisson arrival rate, episodes per hour *per target*.
    rate_per_hour: float
    #: Mean episode duration, seconds (exponentially distributed).
    mean_duration_s: float
    #: Kind-specific magnitude (see :class:`FaultEpisode.intensity`).
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0:
            raise ValueError(f"rate_per_hour cannot be negative, got {self.rate_per_hour}")
        if self.mean_duration_s <= 0:
            raise ValueError(
                f"mean_duration_s must be positive, got {self.mean_duration_s}"
            )
        if self.intensity < 0:
            raise ValueError(f"intensity cannot be negative, got {self.intensity}")


@dataclass(frozen=True)
class ChaosParams:
    """Episode processes for every fault kind (the chaos operating point).

    The defaults are deliberately *moderate*: they are the episode
    rates the acceptance experiments run at, chosen so a resilient CRP
    service retains most of its fault-free accuracy while a naive one
    visibly degrades.  :meth:`scaled` multiplies all rates by one
    factor, which is the sweep axis of ``experiments/chaos.py``.
    """

    resolver_flaky: EpisodeParams = EpisodeParams(
        rate_per_hour=0.03, mean_duration_s=1800.0, intensity=0.9
    )
    authority_outage: EpisodeParams = EpisodeParams(
        rate_per_hour=0.01, mean_duration_s=600.0
    )
    replica_outage: EpisodeParams = EpisodeParams(
        rate_per_hour=0.01, mean_duration_s=1200.0
    )
    mapping_stale: EpisodeParams = EpisodeParams(
        rate_per_hour=0.05, mean_duration_s=1800.0
    )
    regional_congestion: EpisodeParams = EpisodeParams(
        rate_per_hour=0.02, mean_duration_s=1800.0, intensity=40.0
    )
    #: Meridian deployment pathologies drawn under the same seed; None
    #: leaves any scenario-level Meridian failure setting alone.
    meridian: Optional[FailureRates] = None
    #: Horizon episodes are drawn over, seconds.
    horizon_s: float = 86400.0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")

    def params_for(self, kind: FaultKind) -> EpisodeParams:
        """The episode process for an enacted kind.

        Raises :class:`ValueError` for kinds without an episode process
        (anything outside :data:`ENACTED_KINDS`).
        """
        table = {
            FaultKind.RESOLVER_FLAKY: self.resolver_flaky,
            FaultKind.AUTHORITY_OUTAGE: self.authority_outage,
            FaultKind.REPLICA_OUTAGE: self.replica_outage,
            FaultKind.MAPPING_STALE: self.mapping_stale,
            FaultKind.REGIONAL_CONGESTION: self.regional_congestion,
        }
        try:
            return table[kind]
        except KeyError:
            enacted = ", ".join(k.value for k in ENACTED_KINDS)
            raise ValueError(
                f"no episode process for fault kind {kind!r}; "
                f"enacted kinds are: {enacted}"
            ) from None

    def scaled(self, factor: float) -> "ChaosParams":
        """All episode rates multiplied by ``factor`` (the sweep axis).

        Durations and intensities stay put — the sweep varies *how
        often* things break, which keeps levels comparable.
        """
        if factor < 0:
            raise ValueError(f"factor cannot be negative, got {factor}")

        def scale(p: EpisodeParams) -> EpisodeParams:
            return replace(p, rate_per_hour=p.rate_per_hour * factor)

        return replace(
            self,
            resolver_flaky=scale(self.resolver_flaky),
            authority_outage=scale(self.authority_outage),
            replica_outage=scale(self.replica_outage),
            mapping_stale=scale(self.mapping_stale),
            regional_congestion=scale(self.regional_congestion),
        )


@dataclass
class FaultSchedule:
    """All drawn episodes for one experiment, sorted by start time."""

    episodes: List[FaultEpisode] = field(default_factory=list)
    horizon_s: float = 86400.0

    def __post_init__(self) -> None:
        self.episodes = sorted(
            self.episodes, key=lambda e: (e.start, e.end, e.kind.value, e.target)
        )

    def __len__(self) -> int:
        return len(self.episodes)

    def __iter__(self):
        return iter(self.episodes)

    def by_kind(self, kind: FaultKind) -> List[FaultEpisode]:
        """Episodes of one kind, in start order."""
        return [e for e in self.episodes if e.kind is kind]

    def active_at(self, now: float) -> List[FaultEpisode]:
        """Episodes active at a point in time."""
        return [e for e in self.episodes if e.active(now)]

    def counts_by_kind(self) -> Dict[str, int]:
        """Episode counts per kind value (reporting/export)."""
        counts: Dict[str, int] = {}
        for episode in self.episodes:
            counts[episode.kind.value] = counts.get(episode.kind.value, 0) + 1
        return counts

    def with_episodes(self, extra: Iterable[FaultEpisode]) -> "FaultSchedule":
        """A new schedule with additional episodes merged in."""
        return FaultSchedule(
            episodes=self.episodes + list(extra), horizon_s=self.horizon_s
        )

    @classmethod
    def generate(
        cls,
        targets: Mapping[FaultKind, Sequence[str]],
        params: ChaosParams,
        seed: int,
    ) -> "FaultSchedule":
        """Draw a schedule from seeded per-(kind, target) processes.

        Each target runs an independent alternating renewal process:
        exponential inter-arrival gaps (rate ``rate_per_hour``) and
        exponential episode durations, non-overlapping per target.
        Episodes are clipped to the horizon.  A kind missing from
        ``targets`` (or with rate zero) contributes nothing.
        """
        horizon = params.horizon_s
        episodes: List[FaultEpisode] = []
        for kind in ENACTED_KINDS:
            kind_targets = targets.get(kind)
            if not kind_targets:
                continue
            process = params.params_for(kind)
            if process.rate_per_hour <= 0:
                continue
            mean_gap_s = 3600.0 / process.rate_per_hour
            for target in kind_targets:
                rng = derive_rng(seed, "faults", kind.value, target)
                t = float(rng.exponential(mean_gap_s))
                while t < horizon:
                    duration = max(1.0, float(rng.exponential(process.mean_duration_s)))
                    duration = min(duration, horizon - t)
                    if duration >= 1.0:
                        episodes.append(
                            FaultEpisode(
                                kind=kind,
                                target=target,
                                start=t,
                                duration=duration,
                                intensity=process.intensity,
                            )
                        )
                    t += duration + float(rng.exponential(mean_gap_s))
        return cls(episodes=episodes, horizon_s=horizon)


def episodes_from_failure_plan(
    plan: FailurePlan, horizon_s: float
) -> List[FaultEpisode]:
    """Meridian pathology windows as schedule episodes (reporting only).

    The overlay enacts the plan itself (nodes consult it per query);
    these rows exist so one :class:`FaultSchedule` describes *all*
    injected failures, Meridian's included.
    """
    episodes: List[FaultEpisode] = []
    for name in sorted(plan.never_joined):
        episodes.append(
            FaultEpisode(
                kind=FaultKind.MERIDIAN_NEVER_JOINED,
                target=name,
                start=0.0,
                duration=horizon_s,
            )
        )
    outage = plan.rates.mute_seconds + plan.rates.self_recommend_seconds
    for name, restarted in sorted(plan.restart_at.items()):
        episodes.append(
            FaultEpisode(
                kind=FaultKind.MERIDIAN_RESTART,
                target=name,
                start=restarted,
                duration=max(1.0, outage),
            )
        )
    return episodes
