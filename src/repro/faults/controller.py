"""The chaos controller: enacting a fault schedule against live substrates.

:class:`ChaosController` holds handles to the substrates a scenario
wires together — resolvers, the DNS infrastructure, the CDN replica
deployment and mapping system, the congestion field — plus a
:class:`~repro.faults.schedule.FaultSchedule`, and replays the
schedule's episode boundaries as the simulated clock advances:

* ``RESOLVER_FLAKY`` — swaps the target resolver's ``failure_rate`` up
  to the episode intensity, restoring the original afterwards.
* ``AUTHORITY_OUTAGE`` — ``fail()``/``restore()`` on the authoritative
  server owning the target zone.
* ``REPLICA_OUTAGE`` — ``fail()``/``restore()`` on the replica
  deployment; the mapping routes around the dead box next epoch.
* ``MAPPING_STALE`` — freezes the mapping system's rankings (stale
  epochs keep being served) for the episode.
* ``REGIONAL_CONGESTION`` — installs a
  :class:`~repro.netsim.dynamics.RegionalSurge` on the congestion field
  (the surge itself is time-bounded, so enactment is install-once).

Everything is idempotent and re-entrant: overlapping episodes on the
same target are depth-counted, so the substrate only reverts when the
*last* overlapping episode ends.  ``sync(now)`` may be called as often
or as rarely as the driver likes — boundaries are replayed in time
order regardless of step size — but never backwards (simulated time is
monotonic everywhere in this reproduction).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cdn.mapping import MappingSystem
from repro.cdn.replica import ReplicaDeployment
from repro.dnssim.infrastructure import DnsInfrastructure
from repro.dnssim.resolver import RecursiveResolver
from repro.faults.schedule import FaultEpisode, FaultKind, FaultSchedule
from repro.netsim.dynamics import CongestionField, RegionalSurge
from repro.obs import Observability, get_observability


class ChaosController:
    """Drives one fault schedule against a scenario's substrates."""

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        resolvers: Optional[Mapping[str, RecursiveResolver]] = None,
        infrastructure: Optional[DnsInfrastructure] = None,
        deployment: Optional[ReplicaDeployment] = None,
        mapping: Optional[MappingSystem] = None,
        congestion: Optional[CongestionField] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.schedule = schedule
        obs = obs if obs is not None else get_observability()
        self._trace = obs.trace
        self._metrics = obs.metrics
        self._m_active = obs.metrics.gauge("fault.active_episodes")
        self._resolvers = resolvers or {}
        self._infrastructure = infrastructure
        self._deployment = deployment
        self._mapping = mapping
        self._congestion = congestion
        #: (time, is_end, episode) boundaries, ends before starts on ties
        #: so back-to-back episodes on one target hand over cleanly.
        boundaries: List[Tuple[float, int, int, FaultEpisode]] = []
        for index, episode in enumerate(schedule.episodes):
            boundaries.append((episode.start, 1, index, episode))
            boundaries.append((episode.end, 0, index, episode))
        boundaries.sort(key=lambda b: (b[0], b[1], b[2]))
        self._boundaries = boundaries
        self._cursor = 0
        self._now = float("-inf")
        #: Depth counters for overlapping episodes per (kind, target).
        self._depth: Counter = Counter()
        #: Saved resolver failure rates while flaky episodes are active.
        self._saved_failure_rate: Dict[str, float] = {}
        self._active: Dict[int, FaultEpisode] = {}
        self.episodes_started: Counter = Counter()
        self.episodes_ended: Counter = Counter()

    # -- state -------------------------------------------------------------

    @property
    def active_episodes(self) -> List[FaultEpisode]:
        """Episodes currently enacted, in start order."""
        return sorted(
            self._active.values(), key=lambda e: (e.start, e.kind.value, e.target)
        )

    def counters(self) -> Dict[str, int]:
        """Started/ended episode counts per kind (flat, for export)."""
        flat: Dict[str, int] = {}
        for kind, count in sorted(self.episodes_started.items()):
            flat[f"started.{kind.value}"] = count
        for kind, count in sorted(self.episodes_ended.items()):
            flat[f"ended.{kind.value}"] = count
        flat["active"] = len(self._active)
        return flat

    def pending_boundary_times(self, until: Optional[float] = None) -> List[float]:
        """Distinct boundary timestamps not yet replayed, in order.

        The event-driven path schedules one fault-boundary event per
        timestamp (optionally clipped to ``until``) and calls
        :meth:`sync` from its handler, instead of polling every round.
        """
        times: List[float] = []
        for at, _, _, _ in self._boundaries[self._cursor :]:
            if until is not None and at >= until:
                break
            if not times or times[-1] != at:
                times.append(at)
        return times

    # -- enactment ---------------------------------------------------------

    def sync(self, now: float) -> int:
        """Replay episode boundaries up to ``now``; returns boundaries
        crossed.  ``now`` must not move backwards."""
        if now < self._now:
            raise ValueError(f"chaos cannot run backwards: {now} < {self._now}")
        self._now = now
        crossed = 0
        while self._cursor < len(self._boundaries):
            at, is_start, index, episode = self._boundaries[self._cursor]
            # Starts apply at their timestamp; an end at exactly ``now``
            # also applies (the window is [start, end)).
            if at > now:
                break
            if is_start:
                self._apply(index, episode)
            else:
                self._revert(index, episode)
            self._cursor += 1
            crossed += 1
        return crossed

    def _apply(self, index: int, episode: FaultEpisode) -> None:
        self._active[index] = episode
        self.episodes_started[episode.kind] += 1
        self._metrics.counter("fault.episodes_started", kind=episode.kind.value).inc()
        self._m_active.set(len(self._active))
        self._trace.emit(
            "fault.start", episode.start, episode.target,
            kind=episode.kind.value, intensity=episode.intensity,
            end=episode.end,
        )
        key = (episode.kind, episode.target)
        first = self._depth[key] == 0
        self._depth[key] += 1
        kind, target = episode.kind, episode.target
        if kind is FaultKind.RESOLVER_FLAKY:
            resolver = self._resolvers.get(target)
            if resolver is not None:
                if first:
                    self._saved_failure_rate[target] = resolver.failure_rate
                resolver.failure_rate = min(0.999, max(
                    resolver.failure_rate, episode.intensity
                ))
        elif kind is FaultKind.AUTHORITY_OUTAGE:
            server = (
                self._infrastructure.authoritative_for(target)
                if self._infrastructure is not None
                else None
            )
            if server is not None:
                server.fail()
        elif kind is FaultKind.REPLICA_OUTAGE:
            if self._deployment is not None and self._deployment.knows_address(target):
                self._deployment.fail(target)
        elif kind is FaultKind.MAPPING_STALE:
            if self._mapping is not None:
                self._mapping.frozen = True
        elif kind is FaultKind.REGIONAL_CONGESTION:
            if self._congestion is not None and first:
                # The surge is time-bounded itself: install once, no revert.
                self._congestion.add_surge(
                    RegionalSurge(
                        region=target,
                        extra_ms=episode.intensity,
                        start=episode.start,
                        end=episode.end,
                    )
                )
        # Meridian kinds: enacted by the overlay via its FailurePlan.

    def _revert(self, index: int, episode: FaultEpisode) -> None:
        self._active.pop(index, None)
        self.episodes_ended[episode.kind] += 1
        self._metrics.counter("fault.episodes_ended", kind=episode.kind.value).inc()
        self._m_active.set(len(self._active))
        self._trace.emit(
            "fault.end", episode.end, episode.target,
            kind=episode.kind.value,
        )
        key = (episode.kind, episode.target)
        self._depth[key] -= 1
        if self._depth[key] > 0:
            return  # an overlapping episode still holds the fault
        del self._depth[key]
        kind, target = episode.kind, episode.target
        if kind is FaultKind.RESOLVER_FLAKY:
            resolver = self._resolvers.get(target)
            if resolver is not None and target in self._saved_failure_rate:
                resolver.failure_rate = self._saved_failure_rate.pop(target)
        elif kind is FaultKind.AUTHORITY_OUTAGE:
            server = (
                self._infrastructure.authoritative_for(target)
                if self._infrastructure is not None
                else None
            )
            if server is not None:
                server.restore()
        elif kind is FaultKind.REPLICA_OUTAGE:
            if self._deployment is not None and self._deployment.knows_address(target):
                self._deployment.restore(target)
        elif kind is FaultKind.MAPPING_STALE:
            if self._mapping is not None and not any(
                e.kind is FaultKind.MAPPING_STALE for e in self._active.values()
            ):
                self._mapping.frozen = False
