"""Ring-membership diversity via hypervolume maximisation.

Meridian keeps only ``k`` members per ring and, given more candidates,
prefers the subset that is most *geographically diverse*: "Meridian
nodes periodically reassess ring-membership decisions with the goal of
maximizing the hypervolume of the polytope formed by the selected
nodes" (paper, Section II).

Members are characterised by their latencies to each other.  We embed
the candidate set with classical multidimensional scaling (double
centering of the squared-distance matrix) and score a subset by the
product of the significant eigenvalues of its Gram matrix — a proxy for
the squared volume of the polytope the subset spans.  Subset selection
is greedy removal, which is what deployed Meridian implementations do
(exact subset search is exponential).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

#: Eigenvalues below this fraction of the largest are treated as noise.
_EIGENVALUE_FLOOR = 1e-9


def _gram_matrix(distance_matrix: np.ndarray) -> np.ndarray:
    """Double-centered Gram matrix from a squared-distance matrix."""
    n = distance_matrix.shape[0]
    squared = distance_matrix**2
    centering = np.eye(n) - np.ones((n, n)) / n
    return -0.5 * centering @ squared @ centering


def diversity_score(distance_matrix: np.ndarray) -> float:
    """Log-volume proxy for the polytope spanned by a member set.

    Larger is more diverse.  Returns ``-inf`` for degenerate sets
    (fewer than two members or all-zero distances).
    """
    n = distance_matrix.shape[0]
    if n < 2:
        return float("-inf")
    gram = _gram_matrix(np.asarray(distance_matrix, dtype=float))
    eigenvalues = np.linalg.eigvalsh(gram)
    top = eigenvalues[-1]
    if top <= 0:
        return float("-inf")
    kept = eigenvalues[eigenvalues > top * _EIGENVALUE_FLOOR]
    # Half the log-determinant of the significant spectrum — the
    # log-volume of the spanned simplex up to a constant.
    return 0.5 * float(np.sum(np.log(kept)))


def select_diverse_subset(
    members: Sequence[str],
    k: int,
    pairwise_ms: Callable[[str, str], float],
) -> List[str]:
    """Keep the ``k`` most diverse members by greedy removal.

    ``pairwise_ms`` supplies member-to-member latencies (Meridian nodes
    learn these from the latency vectors members gossip).  With ``k``
    or fewer members the input is returned unchanged (as a list).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    current = list(members)
    if len(current) <= k:
        return current

    n = len(current)
    distances = np.zeros((n, n))
    for i, a in enumerate(current):
        for j in range(i + 1, n):
            d = pairwise_ms(a, current[j])
            distances[i, j] = distances[j, i] = d

    active = list(range(n))
    while len(active) > k:
        best_drop = None
        best_score = float("-inf")
        for drop in active:
            rest = [i for i in active if i != drop]
            score = diversity_score(distances[np.ix_(rest, rest)])
            if score > best_score:
                best_score = score
                best_drop = drop
        active.remove(best_drop)
    return [current[i] for i in active]
