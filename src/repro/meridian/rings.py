"""Meridian's per-node ring structure.

Each node organises the peers it knows into a set of concentric,
non-overlapping latency rings: ring ``i`` holds peers whose measured
RTT falls in ``[α·s^(i-1), α·s^i)``, with the innermost ring covering
``[0, α)`` and the outermost extending to infinity.  Rings are capped
at ``k`` primary members; extra candidates are retained (up to a small
secondary pool) and the periodic ring-management pass keeps the ``k``
most diverse (see :mod:`repro.meridian.hypervolume`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.meridian.hypervolume import select_diverse_subset


@dataclass(frozen=True)
class RingParams:
    """Ring geometry and capacity."""

    #: Inner radius of ring 1, ms (Meridian's α).
    alpha_ms: float = 1.0
    #: Radius multiplier between consecutive rings (Meridian's s).
    s: float = 2.0
    #: Number of finite rings; the last ring is unbounded.
    ring_count: int = 10
    #: Primary members per ring (Meridian's k).
    k: int = 8
    #: Additional secondary candidates kept per ring.
    secondary: int = 4

    def __post_init__(self) -> None:
        if self.alpha_ms <= 0:
            raise ValueError("alpha_ms must be positive")
        if self.s <= 1:
            raise ValueError("ring multiplier s must exceed 1")
        if self.ring_count < 1:
            raise ValueError("need at least one ring")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.secondary < 0:
            raise ValueError("secondary pool cannot be negative")


class RingSet:
    """The rings of one Meridian node."""

    def __init__(self, params: RingParams = RingParams()) -> None:
        self.params = params
        # ring index -> {peer name: latest measured RTT}
        self._rings: Dict[int, Dict[str, float]] = {}

    # -- geometry ----------------------------------------------------------

    def ring_index(self, latency_ms: float) -> int:
        """Which ring a latency falls in (outermost ring is unbounded)."""
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        if latency_ms < self.params.alpha_ms:
            return 0
        index = 1 + int(math.floor(math.log(latency_ms / self.params.alpha_ms, self.params.s)))
        return min(index, self.params.ring_count)

    def ring_bounds(self, index: int) -> Tuple[float, float]:
        """The [inner, outer) latency bounds of a ring."""
        if index < 0 or index > self.params.ring_count:
            raise ValueError(f"no ring {index}")
        if index == 0:
            return (0.0, self.params.alpha_ms)
        inner = self.params.alpha_ms * self.params.s ** (index - 1)
        if index == self.params.ring_count:
            return (inner, float("inf"))
        return (inner, inner * self.params.s)

    # -- membership -----------------------------------------------------------

    def consider(self, peer: str, latency_ms: float) -> None:
        """Insert or refresh a peer with a new latency measurement.

        If the latency moved the peer across a ring boundary it is
        relocated.  Rings hold at most ``k + secondary`` candidates;
        beyond that, the new peer only displaces the slowest candidate
        if it is faster.
        """
        self.forget(peer)
        index = self.ring_index(latency_ms)
        ring = self._rings.setdefault(index, {})
        capacity = self.params.k + self.params.secondary
        if len(ring) >= capacity:
            slowest = max(ring, key=lambda p: (ring[p], p))
            if ring[slowest] <= latency_ms:
                return
            del ring[slowest]
        ring[peer] = latency_ms

    def forget(self, peer: str) -> None:
        """Drop a peer from whatever ring holds it (if any)."""
        for ring in self._rings.values():
            if peer in ring:
                del ring[peer]
                return

    def manage(self, pairwise_ms: Callable[[str, str], float]) -> None:
        """The periodic ring-management pass: trim each ring to its
        ``k`` most diverse members (hypervolume heuristic)."""
        for index, ring in self._rings.items():
            if len(ring) <= self.params.k:
                continue
            keep = select_diverse_subset(sorted(ring), self.params.k, pairwise_ms)
            self._rings[index] = {p: ring[p] for p in keep}

    # -- queries ------------------------------------------------------------

    def latency_of(self, peer: str) -> Optional[float]:
        """Last measured RTT to a known peer, or None."""
        for ring in self._rings.values():
            if peer in ring:
                return ring[peer]
        return None

    def members(self) -> Iterator[Tuple[str, float]]:
        """All (peer, latency) pairs across rings, unordered."""
        for ring in self._rings.values():
            yield from ring.items()

    def ring_members(self, index: int) -> Dict[str, float]:
        """Members of one ring (copy)."""
        return dict(self._rings.get(index, {}))

    def peers_within(self, low_ms: float, high_ms: float) -> List[str]:
        """Peers whose last RTT lies in [low, high] — the β-reduction
        candidate set for a query with target distance in that band."""
        if low_ms > high_ms:
            raise ValueError("low_ms must not exceed high_ms")
        selected = [
            peer
            for peer, latency in self.members()
            if low_ms <= latency <= high_ms
        ]
        return sorted(selected)

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())
