"""Failure injection for the Meridian deployment.

The paper's Meridian comparison target was a *live* PlanetLab service,
and Section V-A attributes most of Meridian's selection errors to
deployment pathologies rather than the protocol:

* Restarted nodes spent hours bootstrapping and then "provided
  [themselves] as the closest node to all our requests" for several
  more hours (planetlab1.cis.upenn.edu: 10 h mute, 7 h
  self-recommending).
* Some nodes "never successfully joined the Meridian overlay during
  our 5-day experiment" (sjtu1, kaist, hku).
* Some host pairs "only connected to the other host in their site"
  and answered every query with themselves or their collocated node
  (u-tokyo, atcorp pairs).

A :class:`FailurePlan` assigns these states — at rates matching the
paper's counts (3/240 never joined, 2 isolated pairs, a few restarts)
— so benches can run Meridian both pristine and deployed-flaky.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from repro.netsim.rng import derive_rng
from repro.netsim.topology import Host


@dataclass(frozen=True)
class FailureRates:
    """How common each pathology is (fractions of the deployment)."""

    #: Fraction of nodes that never join (answer with themselves).
    never_joined: float = 3.0 / 240.0
    #: Fraction of nodes forming site-isolated pairs (rounded to pairs).
    site_isolated: float = 4.0 / 240.0
    #: Fraction of nodes that restart mid-experiment.
    restarts: float = 5.0 / 240.0
    #: Seconds a restarted node is mute before answering anything.
    mute_seconds: float = 10.0 * 3600.0
    #: Seconds (after going mute ends) it self-recommends.
    self_recommend_seconds: float = 7.0 * 3600.0

    def __post_init__(self) -> None:
        for name in ("never_joined", "site_isolated", "restarts"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a fraction in [0, 1], got {value}")

    @classmethod
    def none(cls) -> "FailureRates":
        """A pristine deployment (all pathologies off)."""
        return cls(never_joined=0.0, site_isolated=0.0, restarts=0.0)


@dataclass
class FailurePlan:
    """Concrete pathology assignments for one deployment."""

    #: Hosts that never join.
    never_joined: frozenset = frozenset()
    #: host name -> collocated partner name (both directions present).
    isolated_partner: Dict[str, str] = field(default_factory=dict)
    #: host name -> simulated time of its restart.
    restart_at: Dict[str, float] = field(default_factory=dict)
    rates: FailureRates = FailureRates()

    @classmethod
    def generate(
        cls,
        hosts: Sequence[Host],
        rates: FailureRates,
        seed: int,
        horizon_seconds: float = 5.0 * 86400.0,
    ) -> "FailurePlan":
        """Draw a plan for a host set.

        Site-isolated nodes are drawn as *pairs from the same metro*
        (they are collocated machines); metros with a single host
        cannot contribute.  Restart times are uniform over the
        experiment horizon.
        """
        rng = derive_rng(seed, "meridian", "failures")
        names = [h.name for h in hosts]
        order = list(names)
        rng.shuffle(order)

        never_count = int(round(rates.never_joined * len(hosts)))
        never = frozenset(order[:never_count])
        remaining = [n for n in order if n not in never]

        by_metro: Dict[str, List[str]] = defaultdict(list)
        host_by_name = {h.name: h for h in hosts}
        for name in remaining:
            by_metro[host_by_name[name].metro.name].append(name)
        pair_target = int(round(rates.site_isolated * len(hosts) / 2.0))
        isolated: Dict[str, str] = {}
        metros = sorted(by_metro)
        rng.shuffle(metros)
        for metro in metros:
            if pair_target <= 0:
                break
            mates = by_metro[metro]
            if len(mates) >= 2:
                a, b = mates[0], mates[1]
                isolated[a] = b
                isolated[b] = a
                pair_target -= 1

        restart_count = int(round(rates.restarts * len(hosts)))
        eligible = [n for n in remaining if n not in isolated]
        restart_at = {
            name: float(rng.uniform(0.0, horizon_seconds))
            for name in eligible[:restart_count]
        }
        return cls(
            never_joined=never,
            isolated_partner=isolated,
            restart_at=restart_at,
            rates=rates,
        )

    # -- queries ----------------------------------------------------------

    def is_never_joined(self, name: str) -> bool:
        return name in self.never_joined

    def partner_of(self, name: str) -> Optional[str]:
        return self.isolated_partner.get(name)

    def restart_time(self, name: str) -> Optional[float]:
        return self.restart_at.get(name)

    def is_mute(self, name: str, now: float) -> bool:
        """True while a restarted node answers nothing at all."""
        restarted = self.restart_at.get(name)
        if restarted is None:
            return False
        return restarted <= now < restarted + self.rates.mute_seconds

    def is_self_recommending(self, name: str, now: float) -> bool:
        """True while a restarted node answers everything with itself."""
        restarted = self.restart_at.get(name)
        if restarted is None:
            return False
        start = restarted + self.rates.mute_seconds
        end = start + self.rates.self_recommend_seconds
        return start <= now < end
