"""Meridian: the direct-measurement baseline (Wong et al., SIGCOMM 2005).

The paper compares CRP's closest-node selection against a deployed
Meridian service on PlanetLab.  This package implements the protocol —
per-node concentric latency rings, hypervolume-driven ring-membership
diversity, anti-entropy gossip for discovery, and the β-reduction
closest-node query — plus a failure-injection layer reproducing the
pathologies the paper documents in its deployed comparison target
(bootstrap self-recommendation, nodes that never join, site-isolated
nodes).
"""

from repro.meridian.hypervolume import diversity_score, select_diverse_subset
from repro.meridian.rings import RingSet, RingParams
from repro.meridian.node import MeridianNode, NodeState, QueryBudget
from repro.meridian.overlay import MeridianOverlay, MeridianParams, QueryOutcome
from repro.meridian.failures import FailurePlan, FailureRates

__all__ = [
    "diversity_score",
    "select_diverse_subset",
    "RingSet",
    "RingParams",
    "MeridianNode",
    "NodeState",
    "QueryBudget",
    "MeridianOverlay",
    "MeridianParams",
    "QueryOutcome",
    "FailurePlan",
    "FailureRates",
]
