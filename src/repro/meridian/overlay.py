"""The Meridian overlay: membership, gossip driving, query entry.

The overlay owns the node set, the failure plan, probe accounting, and
the pairwise-latency cache nodes use for ring management.  Queries
enter at a configurable entry node (the paper used "the measuring
PlanetLab node as the entry point") and run the β-reduction search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


from repro.meridian.failures import FailurePlan, FailureRates
from repro.meridian.node import MeridianNode, NodeState, QueryBudget
from repro.meridian.rings import RingParams
from repro.netsim.network import Network
from repro.netsim.rng import derive_rng
from repro.netsim.topology import Host


@dataclass(frozen=True)
class MeridianParams:
    """Protocol parameters."""

    rings: RingParams = RingParams()
    #: Reduction threshold β: forward only if some peer is at most
    #: (1 − β) of our own distance to the target.
    beta: float = 0.5
    #: Ring-member sample size pushed per gossip message.
    gossip_fanout: int = 4
    #: Existing nodes a joining node probes.
    join_sample: int = 8
    #: Forwarding-hop cap per query.
    max_hops: int = 16
    #: Gossip rounds run at build time to warm the overlay.
    warmup_rounds: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")
        if self.join_sample < 1:
            raise ValueError("join_sample must be at least 1")


@dataclass(frozen=True)
class QueryOutcome:
    """The result of one closest-node query."""

    #: Name of the node Meridian recommends.
    selected: str
    #: Entry node the query started at.
    entry: str
    #: Forwarding hops the query took.
    hops: int
    #: RTT probes spent on this query (the cost CRP avoids).
    probes: int


class MeridianOverlay:
    """A deployed Meridian service over a set of hosts."""

    def __init__(
        self,
        network: Network,
        params: MeridianParams = MeridianParams(),
        seed: int = 0,
        failure_plan: Optional[FailurePlan] = None,
    ) -> None:
        self.network = network
        self.params = params
        self.failure_plan = failure_plan or FailurePlan(rates=FailureRates.none())
        self._rng = derive_rng(seed, "meridian", "overlay")
        self._nodes: Dict[str, MeridianNode] = {}
        self._pairwise_cache: Dict[Tuple[str, str], float] = {}
        self.probes_issued = 0

    # -- infrastructure ----------------------------------------------------

    @property
    def now(self) -> float:
        return self.network.clock.now

    def probe_ms(self, a: Host, b: Host) -> float:
        """One accounted RTT probe."""
        self.probes_issued += 1
        return self.network.measure_rtt_ms(a, b)

    def peer_distance_ms(self, a_name: str, b_name: str) -> float:
        """Cached member-to-member latency for ring management."""
        key = (a_name, b_name) if a_name < b_name else (b_name, a_name)
        cached = self._pairwise_cache.get(key)
        if cached is None:
            cached = self.probe_ms(self._nodes[a_name].host, self._nodes[b_name].host)
            self._pairwise_cache[key] = cached
        return cached

    # -- membership ----------------------------------------------------------

    def node(self, name: str) -> MeridianNode:
        return self._nodes[name]

    @property
    def nodes(self) -> List[MeridianNode]:
        return list(self._nodes.values())

    def members(self) -> List[str]:
        """All node names, sorted."""
        return sorted(self._nodes)

    def build(self, hosts: Sequence[Host]) -> None:
        """Create and join nodes for all hosts, then warm up gossip.

        Join order is randomised.  A joining node probes a sample of
        the healthy nodes already present; site-isolated nodes only
        learn their collocated partner; never-joined nodes get a node
        object (they must answer queries with themselves) but no rings.
        """
        if self._nodes:
            raise ValueError("overlay already built")
        plan = self.failure_plan
        order = list(hosts)
        self._rng.shuffle(order)
        for host in order:
            if plan.is_never_joined(host.name):
                state = NodeState.NEVER_JOINED
            elif plan.partner_of(host.name) is not None:
                state = NodeState.SITE_ISOLATED
            else:
                state = NodeState.HEALTHY
            node = MeridianNode(host, self, self.params.rings, state=state)
            self._nodes[host.name] = node

        for host in order:
            self._join(self._nodes[host.name])
        self.run_gossip(self.params.warmup_rounds)
        self.manage_rings()

    def _join(self, node: MeridianNode) -> None:
        if node.state is NodeState.NEVER_JOINED:
            return
        partner_name = self.failure_plan.partner_of(node.name)
        if partner_name is not None:
            partner = self._nodes.get(partner_name)
            if partner is not None:
                node.probe_and_consider(partner)
            return
        candidates = [
            n
            for n in self._nodes.values()
            if n.name != node.name
            and n.state is NodeState.HEALTHY
            and n.is_responsive()
        ]
        if not candidates:
            return
        sample_size = min(self.params.join_sample, len(candidates))
        chosen = self._rng.choice(len(candidates), size=sample_size, replace=False)
        for index in chosen:
            node.probe_and_consider(candidates[int(index)])

    def run_gossip(self, rounds: int) -> int:
        """Run anti-entropy rounds across all nodes; returns total new
        ring entries made."""
        total = 0
        for _ in range(rounds):
            for name in self.members():
                total += self._nodes[name].gossip_round(self._rng)
        return total

    def manage_rings(self) -> None:
        """Run the diversity pass on every node."""
        for node in self._nodes.values():
            if node.state is NodeState.HEALTHY:
                node.manage_rings()

    # -- queries --------------------------------------------------------------

    def closest_node(
        self,
        target: Host,
        entry: Optional[str] = None,
        probe_budget: Optional[int] = None,
    ) -> QueryOutcome:
        """Find the overlay node closest to ``target``.

        ``entry`` names the entry node; defaults to a random healthy
        one (the paper's client always entered via its measuring
        PlanetLab node).  ``probe_budget`` caps the RTT probes the
        query may spend — the "time available for on-demand probing"
        that the paper identifies as Meridian's accuracy driver.
        """
        if not self._nodes:
            raise ValueError("overlay has no nodes")
        if entry is None:
            healthy = [
                n.name for n in self._nodes.values() if n.state is NodeState.HEALTHY
            ]
            pool = healthy or self.members()
            entry = pool[int(self._rng.integers(0, len(pool)))]
        entry_node = self._nodes[entry]
        probes_before = self.probes_issued
        visited: Set[str] = set()
        budget = QueryBudget(probe_budget)
        selected, hops = entry_node.handle_query(target, visited, budget)
        return QueryOutcome(
            selected=selected,
            entry=entry,
            hops=hops,
            probes=self.probes_issued - probes_before,
        )
