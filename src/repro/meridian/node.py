"""One Meridian node: rings, gossip participation, query handling."""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

import numpy as np

from repro.meridian.rings import RingParams, RingSet
from repro.netsim.topology import Host

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.meridian.overlay import MeridianOverlay


class NodeState(str, Enum):
    """Deployment health of a node (see failures module)."""

    HEALTHY = "healthy"
    NEVER_JOINED = "never-joined"
    SITE_ISOLATED = "site-isolated"


class QueryBudget:
    """Probe allowance for one closest-node query.

    Meridian's accuracy "strongly depends on the time available for
    on-demand probing" (the paper's Section II critique).  A budget
    models that time limit: every RTT probe a query performs draws from
    it, and when it runs dry the query must answer with the best node
    found so far.  ``limit=None`` means unlimited (run to convergence).
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("probe budget must be at least 1 (or None)")
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        """Consume one probe; False when the budget is exhausted."""
        if self.limit is not None and self.spent >= self.limit:
            return False
        self.spent += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit


class MeridianNode:
    """A Meridian overlay member bound to a host."""

    def __init__(
        self,
        host: Host,
        overlay: "MeridianOverlay",
        ring_params: RingParams,
        state: NodeState = NodeState.HEALTHY,
    ) -> None:
        self.host = host
        self.overlay = overlay
        self.rings = RingSet(ring_params)
        self.state = state

    @property
    def name(self) -> str:
        return self.host.name

    # -- behaviour gates --------------------------------------------------

    def _plan(self):
        return self.overlay.failure_plan

    def is_responsive(self) -> bool:
        """Can this node answer protocol messages right now?"""
        if self.state is NodeState.NEVER_JOINED:
            return False
        return not self._plan().is_mute(self.name, self.overlay.now)

    def answers_with_self(self) -> bool:
        """Is this node in a state where it recommends itself blindly?"""
        if self.state is NodeState.NEVER_JOINED:
            return True
        return self._plan().is_self_recommending(self.name, self.overlay.now)

    # -- membership ---------------------------------------------------------

    def probe_and_consider(self, peer: "MeridianNode") -> Optional[float]:
        """Measure a peer and slot it into the rings.

        Unresponsive peers yield nothing (the probe times out).
        """
        if peer.name == self.name:
            return None
        if not peer.is_responsive():
            return None
        latency = self.overlay.probe_ms(self.host, peer.host)
        self.rings.consider(peer.name, latency)
        return latency

    def known_peers(self) -> List[str]:
        """Names of all ring members, sorted."""
        return sorted(name for name, _ in self.rings.members())

    def gossip_round(self, rng: np.random.Generator) -> int:
        """One anti-entropy push: send a random peer a sample of our
        ring members; they probe the ones new to them.

        Returns the number of fresh peers the receiver probed.
        Site-isolated nodes only ever talk to their collocated partner,
        so their gossip spreads nothing.
        """
        if not self.is_responsive():
            return 0
        peers = self.known_peers()
        if not peers:
            return 0
        receiver_name = peers[int(rng.integers(0, len(peers)))]
        receiver = self.overlay.node(receiver_name)
        if not receiver.is_responsive():
            return 0
        sample_size = min(self.overlay.params.gossip_fanout, len(peers))
        chosen = rng.choice(len(peers), size=sample_size, replace=False)
        payload = [peers[int(i)] for i in chosen] + [self.name]
        fresh = 0
        known_to_receiver = set(receiver.known_peers())
        for name in payload:
            if name == receiver.name or name in known_to_receiver:
                continue
            if receiver.state is NodeState.SITE_ISOLATED:
                continue
            if receiver.probe_and_consider(self.overlay.node(name)) is not None:
                fresh += 1
        return fresh

    def manage_rings(self) -> None:
        """Periodic ring-membership diversity pass."""
        self.rings.manage(self.overlay.peer_distance_ms)

    # -- queries ------------------------------------------------------------

    def handle_query(
        self,
        target: Host,
        visited: Set[str],
        budget: Optional[QueryBudget] = None,
    ) -> Tuple[str, int]:
        """β-reduction closest-node search from this node.

        Returns (selected node name, hops consumed).  ``visited``
        guards against forwarding loops (real Meridian carries the
        query path for the same reason).  ``budget`` caps the probes
        the query may spend; a dry budget ends the search with the
        best node found so far.
        """
        if budget is None:
            budget = QueryBudget(None)
        visited.add(self.name)
        if self.answers_with_self():
            return self.name, 0
        if not budget.take():
            return self.name, 0

        beta = self.overlay.params.beta
        own_distance = self.overlay.probe_ms(self.host, target)
        low = (1.0 - beta) * own_distance
        high = (1.0 + beta) * own_distance
        candidates = self.rings.peers_within(low, high)

        best_name = self.name
        best_distance = own_distance
        for peer_name in candidates:
            if peer_name in visited:
                continue
            peer = self.overlay.node(peer_name)
            if not peer.is_responsive():
                continue
            if not budget.take():
                break
            peer_distance = self.overlay.probe_ms(peer.host, target)
            if peer_distance < best_distance:
                best_name = peer_name
                best_distance = peer_distance

        if (
            best_name != self.name
            and best_distance <= (1.0 - beta) * own_distance
            and len(visited) < self.overlay.params.max_hops
            and not budget.exhausted
        ):
            next_node = self.overlay.node(best_name)
            chosen, hops = next_node.handle_query(target, visited, budget)
            return chosen, hops + 1
        return best_name, 0
