#!/usr/bin/env python
"""Record event-engine benchmarks to ``BENCH_events.json``.

Two measurements, one artifact at the repo root:

* **engine scale** — a synthetic sparse population (1M clients at
  ``--scale default``, 100k at ``quick``) under a Zipf-weighted
  Poisson workload, driven through the raw :class:`EventLoop` with a
  counting handler.  Records wall-clock per dispatched event and the
  analytical dense-equivalent dispatch count (every client probed
  every 10 minutes over the same horizon), i.e. what the dense round
  loop *would* have issued for the same simulated time.
* **scenario scale** — an actual :class:`Scenario` run both ways at
  the scale's selection population: the dense ``run_probe_rounds``
  reference versus ``run_events`` under a sparse Zipf workload at the
  same simulated horizon.  Records measured walls, measured dispatch
  counts, and the dense-vs-event dispatch ratio (the ISSUE's >=10x
  acceptance line).

The two runs answer different questions: the synthetic run shows the
engine's constant factors survive a million-entry heap (a scenario
that large would be dominated by resolver construction, not event
dispatch); the scenario run shows the savings are real end to end,
with the full probe/cache/chaos machinery behind every event.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_events.py --scale default
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.netsim.clock import SimClock  # noqa: E402
from repro.sim import (  # noqa: E402
    EventKind,
    EventLoop,
    PoissonZipfWorkload,
    SyntheticPopulation,
)
from repro.workloads.scenario import Scenario  # noqa: E402
from repro.experiments.harness import scenario_params_for  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_events.json"

#: The dense reference cadence the ratios are quoted against.
DENSE_INTERVAL_S = 600.0

ENGINE_POPULATION = {"quick": 100_000, "default": 1_000_000}


def bench_engine(scale: str, seed: int) -> dict:
    """Raw EventLoop throughput on a synthetic sparse population."""
    population = ENGINE_POPULATION.get(scale, ENGINE_POPULATION["default"])
    horizon_s = 3600.0
    # Aggregate arrival rate chosen so the sparse run dispatches a few
    # hundred thousand events at 1M clients — enough to time, far below
    # the dense-equivalent count.
    workload = PoissonZipfWorkload(
        SyntheticPopulation(population), seed, aggregate_rate_per_s=60.0
    )

    started = time.perf_counter()
    clock = SimClock()
    loop = EventLoop(clock, horizon_s=horizon_s)
    dispatched = [0]

    def on_probe(event):
        dispatched[0] += 1
        nxt = workload.next_arrival(event.subject, event.at)
        if nxt is not None:
            loop.schedule(EventKind.CLIENT_PROBE, nxt, event.subject)

    loop.on(EventKind.CLIENT_PROBE, on_probe)

    schedule_started = time.perf_counter()
    arrivals = workload.first_arrivals()
    active = np.nonzero(arrivals < horizon_s)[0]
    for index in active:
        loop.schedule(EventKind.CLIENT_PROBE, float(arrivals[index]), int(index))
    loop.count_idle_skips(population - len(active))
    schedule_wall = time.perf_counter() - schedule_started

    loop.run()
    total_wall = time.perf_counter() - started
    stats = loop.stats()

    dense_equivalent = population * int(horizon_s // DENSE_INTERVAL_S)
    return {
        "population": population,
        "horizon_s": horizon_s,
        "aggregate_rate_per_s": 60.0,
        "zipf_alpha": workload.alpha,
        "events_dispatched": stats.dispatched,
        "events_suppressed": stats.suppressed,
        "idle_skips": stats.idle_skips,
        "max_heap_depth": stats.max_heap_depth,
        "initial_schedule_wall_s": round(schedule_wall, 3),
        "total_wall_s": round(total_wall, 3),
        "wall_per_event_us": round(total_wall / max(1, stats.dispatched) * 1e6, 2),
        "events_per_s": round(stats.dispatched / max(total_wall, 1e-9)),
        "dense_equivalent_dispatches": dense_equivalent,
        "dispatch_ratio_vs_dense": round(
            dense_equivalent / max(1, stats.dispatched), 1
        ),
    }


def bench_scenario(scale: str, seed: int, rate_factor: float) -> dict:
    """Dense round loop vs event engine on a real scenario."""
    params = scenario_params_for(scale, seed, meridian=False)
    rounds = 24 if scale == "quick" else 96
    horizon_s = rounds * DENSE_INTERVAL_S

    dense = Scenario(params)
    dense_started = time.perf_counter()
    dense.run_probe_rounds(rounds, interval_minutes=DENSE_INTERVAL_S / 60.0)
    dense_wall = time.perf_counter() - dense_started
    dense_probes = dense.crp.probes_issued

    evented = Scenario(params)
    active = evented.crp.active_nodes
    workload = PoissonZipfWorkload(
        active,
        seed,
        aggregate_rate_per_s=len(active) / DENSE_INTERVAL_S * rate_factor,
    )
    event_started = time.perf_counter()
    loop = evented.run_events(workload, until_s=horizon_s)
    event_wall = time.perf_counter() - event_started
    stats = loop.stats()
    probe_events = stats.dispatched_by_kind.get("client_probe", 0)

    positioned = sum(
        1 for node in active if evented.crp.ratio_map(node) is not None
    )
    return {
        "population": len(active),
        "probe_rounds": rounds,
        "horizon_s": horizon_s,
        "rate_factor": rate_factor,
        "dense_wall_s": round(dense_wall, 2),
        "dense_probes_issued": dense_probes,
        "event_wall_s": round(event_wall, 2),
        "event_probes_issued": evented.crp.probes_issued,
        "events_dispatched": stats.dispatched,
        "probe_events_dispatched": probe_events,
        "ttl_sweeps": stats.dispatched_by_kind.get("ttl_expiry", 0),
        "max_heap_depth": stats.max_heap_depth,
        "dispatch_ratio": round(dense_probes / max(1, probe_events), 1),
        "wall_ratio": round(dense_wall / max(event_wall, 1e-9), 1),
        "clients_positioned": positioned,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("quick", "default"), default="default")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument(
        "--rate-factor",
        type=float,
        default=0.05,
        help="sparse aggregate rate as a fraction of the dense cadence",
    )
    parser.add_argument("--out", type=Path, default=OUTPUT)
    args = parser.parse_args()

    print(f"engine benchmark: {ENGINE_POPULATION[args.scale]:,} synthetic clients")
    engine = bench_engine(args.scale, args.seed)
    print(
        f"  dispatched {engine['events_dispatched']:,} events in "
        f"{engine['total_wall_s']}s ({engine['wall_per_event_us']}us/event, "
        f"{engine['events_per_s']:,}/s); dense equivalent "
        f"{engine['dense_equivalent_dispatches']:,} "
        f"({engine['dispatch_ratio_vs_dense']}x fewer dispatches)"
    )

    print(f"scenario benchmark: scale={args.scale}, rate_factor={args.rate_factor}")
    scenario = bench_scenario(args.scale, args.seed, args.rate_factor)
    print(
        f"  dense: {scenario['dense_probes_issued']:,} probes in "
        f"{scenario['dense_wall_s']}s; event: "
        f"{scenario['probe_events_dispatched']:,} probe events in "
        f"{scenario['event_wall_s']}s -> dispatch ratio "
        f"{scenario['dispatch_ratio']}x, wall ratio {scenario['wall_ratio']}x, "
        f"{scenario['clients_positioned']}/{scenario['population']} positioned"
    )

    artifact = {
        "benchmark": "event-driven scenario core",
        "source": "scripts/bench_events.py",
        "scale": args.scale,
        "seed": args.seed,
        "dense_interval_s": DENSE_INTERVAL_S,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "engine": engine,
        "scenario": scenario,
        "note": (
            "engine = raw EventLoop on a synthetic population (dense "
            "equivalent is analytical: population x horizon/interval); "
            "scenario = measured dense run_probe_rounds vs run_events "
            "on the scale's selection population"
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
