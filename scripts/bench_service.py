#!/usr/bin/env python
"""Record serving-path benchmarks to ``BENCH_service.json``.

One artifact at the repo root: positions/sec and latency percentiles
for the sharded request path (:mod:`repro.serve`) at growing tracked
populations — 10k, 100k and 1M clients at ``--scale default`` (just
the 10k point at ``quick``, the CI smoke).

Each point preseeds the population through the synchronous ingest
path (one observation per client, index order), then times a
Zipf-weighted POSITION query phase through the asyncio
:class:`~repro.serve.frontend.CRPServer`; p50/p99 come from the
``serve.latency_us`` histograms the server records.  The smallest
point is also replayed through the unsharded reference
:class:`~repro.core.service.CRPService` and must match byte for byte
— the run exits non-zero on a fingerprint mismatch.

The million-client point runs with bounded per-shard memory
(``max_trackers``), so it also exercises the LRU eviction path: the
Zipf head stays resident and keeps answering, while the cold tail is
evicted and transparently recreated on its next request.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_service.py --scale default
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.service import run_bench_point  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_service.json"

#: (population, queries, max_trackers per shard, fingerprint check).
#: The 1M point bounds residency at 25k trackers x 8 shards = 200k —
#: a fifth of the population — to demonstrate flat memory under LRU
#: eviction; the unbounded points are the fingerprint-checked ones
#: (the unsharded reference never evicts).
POINTS = {
    "quick": [
        (10_000, 5_000, None, True),
    ],
    "default": [
        (10_000, 20_000, None, True),
        (100_000, 20_000, None, False),
        (1_000_000, 20_000, 25_000, False),
    ],
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(POINTS), default="default")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--out", type=Path, default=OUTPUT)
    args = parser.parse_args()

    points = []
    mismatched = False
    for population, queries, max_trackers, check in POINTS[args.scale]:
        bound = f", {max_trackers:,}/shard bound" if max_trackers else ""
        print(f"bench point: {population:,} clients ({args.shards} shards{bound})")
        point = run_bench_point(
            population,
            args.shards,
            args.seed,
            queries=queries,
            max_trackers=max_trackers,
            check_fingerprint=check,
        )
        points.append(point)
        print(
            f"  ingest {point['observes_per_s']:,} obs/s; "
            f"{point['positions_per_s']:,} positions/s, "
            f"p50 {point['latency_p50_us']}us, p99 {point['latency_p99_us']}us; "
            f"{point['resident_clients']:,} resident, "
            f"{point['evictions']:,} evictions"
        )
        if check:
            ok = point["fingerprint_match"]
            mismatched = mismatched or not ok
            print(
                "  sharded vs unsharded fingerprint: "
                + ("match" if ok else "MISMATCH")
            )

    artifact = {
        "benchmark": "sharded CRP serving path",
        "source": "scripts/bench_service.py",
        "scale": args.scale,
        "seed": args.seed,
        "shards": args.shards,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "points": points,
        "note": (
            "preseed = synchronous ingest of one observation per client "
            "(index order); query phase = Zipf-weighted POSITION stream "
            "through the asyncio server; p50/p99 from the "
            "serve.latency_us histogram; the smallest point is replayed "
            "through the unsharded CRPService and must match byte for "
            "byte; the 1M point runs with bounded per-shard LRU memory"
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 1 if mismatched else 0


if __name__ == "__main__":
    raise SystemExit(main())
