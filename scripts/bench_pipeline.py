#!/usr/bin/env python
"""Record experiment-pipeline benchmarks to ``BENCH_pipeline.json``.

Runs the default experiment sweep through the cell executor twice —
``jobs=1`` (the historical serial path) and ``jobs=N`` — verifies the
two produce byte-identical reports (sha256 over every rendered report),
and writes one JSON artifact at the repo root with:

* measured wall-clock for both runs, plus snapshot hit/miss counts;
* per-shard serial wall times (a shard is the unit of parallel
  scheduling — cells sharing snapshot state stay together);
* an LPT (longest-processing-time) critical-path projection of the
  sweep wall at 2/4/8 workers, computed from the measured per-shard
  times.  On hosts with fewer cores than workers the *measured*
  parallel wall cannot beat serial, so the projection is the honest
  estimate of what the shard plan yields when the cores exist; the
  artifact records ``cpu_count`` so readers can tell which regime the
  measurement ran in.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_pipeline.py --scale default --jobs 8
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec import DEFAULT_EXPERIMENTS, plans_for, run_cells  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_pipeline.json"


def _dedup_cells(plans):
    cells, seen = [], set()
    for plan in plans:
        for cell in plan.cells:
            if cell.cell_key not in seen:
                seen.add(cell.cell_key)
                cells.append(cell)
    return cells


def _report_fingerprint(plans, sweep) -> str:
    """sha256 over every report the sweep renders, in plan order."""
    by_key = sweep.by_key()
    digest = hashlib.sha256()
    for plan in plans:
        reports = plan.combine([by_key[c.cell_key] for c in plan.cells])
        for name in sorted(reports):
            digest.update(name.encode())
            digest.update(reports[name].encode())
    return digest.hexdigest()


def _lpt_makespan(durations: List[float], workers: int) -> float:
    """Longest-processing-time-first bin makespan for shard durations."""
    bins = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        bins[bins.index(min(bins))] += duration
    return max(bins)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="default")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--out", type=Path, default=OUTPUT)
    args = parser.parse_args()

    plans = plans_for(DEFAULT_EXPERIMENTS, args.scale)
    cells = _dedup_cells(plans)
    print(f"sweep: {len(cells)} cells over {len(plans)} experiments "
          f"at scale={args.scale} (cpu_count={os.cpu_count()})")

    serial = run_cells(cells, jobs=1, manifest=False)
    if not serial.ok:
        for failure in serial.failures():
            print(f"FAILED {failure.cell_key}\n{failure.error}")
        return 1
    print(f"jobs=1   wall {serial.wall_s:8.1f}s  "
          f"snapshots {serial.snapshot_hits} hit / {serial.snapshot_misses} miss")

    parallel = run_cells(cells, jobs=args.jobs, manifest=False)
    if not parallel.ok:
        for failure in parallel.failures():
            print(f"FAILED {failure.cell_key}\n{failure.error}")
        return 1
    print(f"jobs={args.jobs:<3d} wall {parallel.wall_s:8.1f}s  "
          f"snapshots {parallel.snapshot_hits} hit / {parallel.snapshot_misses} miss")

    serial_fp = _report_fingerprint(plans, serial)
    parallel_fp = _report_fingerprint(plans, parallel)
    identical = serial_fp == parallel_fp
    print(f"reports bit-identical: {identical}")
    if not identical:
        return 1

    # Per-shard serial wall: the scheduling granularity of the executor.
    shard_walls: Dict[str, float] = {}
    per_cell = []
    by_key = serial.by_key()
    for cell in cells:
        result = by_key[cell.cell_key]
        shard_walls[cell.shard_group] = (
            shard_walls.get(cell.shard_group, 0.0) + result.wall_s
        )
        per_cell.append(
            {
                "cell": cell.cell_key,
                "shard": cell.shard_group,
                "wall_s": round(result.wall_s, 3),
                "snapshot_hits": result.snapshot_hits,
                "snapshot_misses": result.snapshot_misses,
            }
        )

    durations = list(shard_walls.values())
    serial_total = sum(durations)
    projections = {}
    for workers in (2, 4, 8):
        makespan = _lpt_makespan(durations, workers)
        projections[str(workers)] = {
            "projected_wall_s": round(makespan, 1),
            "projected_speedup": round(serial_total / makespan, 2),
        }
        print(f"LPT projection jobs={workers}: {makespan:.1f}s "
              f"({serial_total / makespan:.2f}x)")

    artifact = {
        "benchmark": "experiment-pipeline executor",
        "source": "scripts/bench_pipeline.py",
        "scale": args.scale,
        "experiments": list(DEFAULT_EXPERIMENTS),
        "cells": len(cells),
        "shards": len(shard_walls),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "measured": {
            "jobs_1_wall_s": round(serial.wall_s, 1),
            f"jobs_{args.jobs}_wall_s": round(parallel.wall_s, 1),
            "measured_speedup": round(serial.wall_s / parallel.wall_s, 2),
            "reports_bit_identical": identical,
            "report_fingerprint": serial_fp,
            "snapshot_hits": serial.snapshot_hits,
            "snapshot_misses": serial.snapshot_misses,
            "snapshot_hit_rate": round(
                serial.snapshot_hits
                / max(1, serial.snapshot_hits + serial.snapshot_misses),
                3,
            ),
            "note": (
                "measured parallel speedup is bounded by cpu_count; "
                "see projected for the shard plan's critical path"
            ),
        },
        "projected": {
            "method": "LPT bin-packing of measured per-shard serial walls",
            "serial_shard_total_s": round(serial_total, 1),
            "by_jobs": projections,
        },
        "shard_walls_s": {k: round(v, 2) for k, v in sorted(shard_walls.items())},
        "per_cell": per_cell,
    }
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
