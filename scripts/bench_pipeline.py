#!/usr/bin/env python
"""Record experiment-pipeline benchmarks to ``BENCH_pipeline.json``.

Runs the default experiment sweep through the cell executor three
times over one on-disk snapshot cache — ``jobs=1`` cold (the
historical serial path, populating the cache), ``jobs=N`` warm with
snapshot-affinity shards *split* (every cell schedules independently;
the shared disk store preserves the warm starts the shards existed
for), and ``jobs=1`` warm (per-cell steady-state walls) — verifies all
three produce byte-identical reports (sha256 over every rendered
report), and writes one JSON artifact at the repo root with:

* measured wall-clock for all runs, plus snapshot hit/miss counts;
* per-shard cold and per-cell cold/warm wall times;
* LPT (longest-processing-time) critical-path projections of the
  sweep wall at 2/4/8 workers, in two regimes: **grouped** (cold
  cache, cells sharing snapshot state stay together — capped by the
  longest shard) and **split-warm** (populated cache, every cell its
  own shard — capped by the longest single cell).  On hosts with
  fewer cores than workers the *measured* parallel wall cannot beat
  serial, so the projections are the honest estimate of what each
  plan yields when the cores exist; the artifact records
  ``cpu_count`` so readers can tell which regime the measurement ran
  in, and names the cell that binds each critical path.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_pipeline.py --scale default --jobs 8
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec import DEFAULT_EXPERIMENTS, plans_for, run_cells  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_pipeline.json"


def _dedup_cells(plans):
    cells, seen = [], set()
    for plan in plans:
        for cell in plan.cells:
            if cell.cell_key not in seen:
                seen.add(cell.cell_key)
                cells.append(cell)
    return cells


def _report_fingerprint(plans, sweep) -> str:
    """sha256 over every report the sweep renders, in plan order."""
    by_key = sweep.by_key()
    digest = hashlib.sha256()
    for plan in plans:
        reports = plan.combine([by_key[c.cell_key] for c in plan.cells])
        for name in sorted(reports):
            digest.update(name.encode())
            digest.update(reports[name].encode())
    return digest.hexdigest()


def _lpt_makespan(durations: List[float], workers: int) -> float:
    """Longest-processing-time-first bin makespan for shard durations."""
    bins = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        bins[bins.index(min(bins))] += duration
    return max(bins)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="default")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--out", type=Path, default=OUTPUT)
    args = parser.parse_args()

    plans = plans_for(DEFAULT_EXPERIMENTS, args.scale)
    cells = _dedup_cells(plans)
    print(f"sweep: {len(cells)} cells over {len(plans)} experiments "
          f"at scale={args.scale} (cpu_count={os.cpu_count()})")

    with tempfile.TemporaryDirectory(prefix="bench-snapshots-") as cache_dir:
        # Cold serial run populates the on-disk snapshot cache.
        serial = run_cells(
            cells, jobs=1, manifest=False, store_dir=cache_dir
        )
        if not serial.ok:
            for failure in serial.failures():
                print(f"FAILED {failure.cell_key}\n{failure.error}")
            return 1
        print(f"jobs=1 cold        wall {serial.wall_s:8.1f}s  "
              f"snapshots {serial.snapshot_hits} hit / "
              f"{serial.snapshot_misses} miss / "
              f"{serial.snapshot_prefix_hits} prefix")

        # Warm parallel run with split shards: every cell schedules
        # independently; the populated disk cache carries the warm
        # starts the affinity groups existed for.
        parallel = run_cells(
            cells, jobs=args.jobs, manifest=False, store_dir=cache_dir
        )
        if not parallel.ok:
            for failure in parallel.failures():
                print(f"FAILED {failure.cell_key}\n{failure.error}")
            return 1
        print(f"jobs={args.jobs:<3d} warm split  wall {parallel.wall_s:8.1f}s  "
              f"snapshots {parallel.snapshot_hits} hit / "
              f"{parallel.snapshot_misses} miss")

        # Warm serial run: steady-state per-cell walls for the split
        # projection (what a repeat invocation with --snapshot-cache
        # pays per cell).
        warm = run_cells(cells, jobs=1, manifest=False, store_dir=cache_dir)
        if not warm.ok:
            for failure in warm.failures():
                print(f"FAILED {failure.cell_key}\n{failure.error}")
            return 1
        print(f"jobs=1 warm        wall {warm.wall_s:8.1f}s  "
              f"snapshots {warm.snapshot_hits} hit / {warm.snapshot_misses} miss / "
              f"{warm.snapshot_prefix_hits} prefix, "
              f"{warm.snapshot_rounds_saved} rounds saved, "
              f"{warm.snapshot_full_runs} full runs")

    serial_fp = _report_fingerprint(plans, serial)
    parallel_fp = _report_fingerprint(plans, parallel)
    warm_fp = _report_fingerprint(plans, warm)
    identical = serial_fp == parallel_fp == warm_fp
    print(f"reports bit-identical: {identical}")
    if not identical:
        return 1

    # Per-shard cold wall: the grouped plan's scheduling granularity.
    shard_walls: Dict[str, float] = {}
    per_cell = []
    by_key = serial.by_key()
    warm_by_key = warm.by_key()
    for cell in cells:
        result = by_key[cell.cell_key]
        shard_walls[cell.shard_group] = (
            shard_walls.get(cell.shard_group, 0.0) + result.wall_s
        )
        per_cell.append(
            {
                "cell": cell.cell_key,
                "shard": cell.shard_group,
                "wall_s": round(result.wall_s, 3),
                "warm_wall_s": round(warm_by_key[cell.cell_key].wall_s, 3),
                "snapshot_hits": result.snapshot_hits,
                "snapshot_misses": result.snapshot_misses,
                "prefix_hits": result.snapshot_prefix_hits,
                "rounds_saved": warm_by_key[cell.cell_key].snapshot_rounds_saved,
                "warm_full_runs": warm_by_key[cell.cell_key].snapshot_full_runs,
            }
        )

    durations = list(shard_walls.values())
    serial_total = sum(durations)
    projections = {}
    for workers in (2, 4, 8):
        makespan = _lpt_makespan(durations, workers)
        projections[str(workers)] = {
            "projected_wall_s": round(makespan, 1),
            "projected_speedup": round(serial_total / makespan, 2),
        }
        print(f"LPT grouped/cold projection jobs={workers}: {makespan:.1f}s "
              f"({serial_total / makespan:.2f}x)")

    # Split-regime projection: every cell is its own shard, walls are
    # the warm (cache-backed) measurements.  The critical path bounds
    # at the single longest cell — name it, honestly.
    warm_durations = [c["warm_wall_s"] for c in per_cell]
    warm_total = sum(warm_durations)
    split_projections = {}
    for workers in (2, 4, 8):
        makespan = _lpt_makespan(warm_durations, workers)
        split_projections[str(workers)] = {
            "projected_wall_s": round(makespan, 1),
            "projected_speedup": round(warm_total / makespan, 2),
        }
        print(f"LPT split/warm projection jobs={workers}: {makespan:.1f}s "
              f"({warm_total / makespan:.2f}x)")
    binding = max(per_cell, key=lambda c: c["warm_wall_s"])
    cold_binding = max(per_cell, key=lambda c: c["wall_s"])

    # Headline: the fig8 20-minute-interval cell was the whole split
    # critical path before prefix-extended windows; track its warm wall
    # (and cold, for the ratio) wherever it appears in the sweep.
    fig8_20min = next(
        (
            c
            for c in per_cell
            if c["cell"].startswith("fig8.point@")
            and "interval_minutes=20.0" in c["cell"]
        ),
        None,
    )
    if fig8_20min is not None:
        print(f"fig8 20-min cell: cold {fig8_20min['wall_s']:.1f}s -> "
              f"warm {fig8_20min['warm_wall_s']:.1f}s "
              f"({fig8_20min['rounds_saved']} rounds saved warm)")

    artifact = {
        "benchmark": "experiment-pipeline executor",
        "source": "scripts/bench_pipeline.py",
        "scale": args.scale,
        "experiments": list(DEFAULT_EXPERIMENTS),
        "cells": len(cells),
        "shards": len(shard_walls),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "measured": {
            "jobs_1_cold_wall_s": round(serial.wall_s, 1),
            f"jobs_{args.jobs}_warm_split_wall_s": round(parallel.wall_s, 1),
            "jobs_1_warm_wall_s": round(warm.wall_s, 1),
            "measured_speedup_cold_vs_warm_split": round(
                serial.wall_s / parallel.wall_s, 2
            ),
            "reports_bit_identical": identical,
            "report_fingerprint": serial_fp,
            "cold_snapshot_hits": serial.snapshot_hits,
            "cold_snapshot_misses": serial.snapshot_misses,
            "cold_prefix_hits": serial.snapshot_prefix_hits,
            "cold_rounds_saved": serial.snapshot_rounds_saved,
            "warm_snapshot_hits": warm.snapshot_hits,
            "warm_snapshot_misses": warm.snapshot_misses,
            "warm_prefix_hits": warm.snapshot_prefix_hits,
            "warm_rounds_saved": warm.snapshot_rounds_saved,
            "warm_full_runs": warm.snapshot_full_runs,
            **(
                {
                    "fig8_20min_cold_wall_s": fig8_20min["wall_s"],
                    "fig8_20min_warm_wall_s": fig8_20min["warm_wall_s"],
                    "fig8_20min_warm_speedup": round(
                        fig8_20min["wall_s"]
                        / max(fig8_20min["warm_wall_s"], 1e-9),
                        1,
                    ),
                }
                if fig8_20min is not None
                else {}
            ),
            "note": (
                "measured parallel speedup is bounded by cpu_count; "
                "see projected for each shard plan's critical path"
            ),
        },
        "projected": {
            "grouped_cold": {
                "method": (
                    "LPT bin-packing of measured per-shard cold serial "
                    "walls (affinity groups intact, empty snapshot cache)"
                ),
                "serial_shard_total_s": round(serial_total, 1),
                "by_jobs": projections,
                "binding_cell": cold_binding["cell"],
                "binding_cell_wall_s": cold_binding["wall_s"],
            },
            "split_warm": {
                "method": (
                    "LPT bin-packing of measured per-cell warm serial "
                    "walls (shards split, shared on-disk snapshot "
                    "cache populated — the --snapshot-cache regime)"
                ),
                "serial_cell_total_s": round(warm_total, 1),
                "by_jobs": split_projections,
                "binding_cell": binding["cell"],
                "binding_cell_wall_s": binding["warm_wall_s"],
                "note": (
                    "the critical path bounds at the longest single "
                    "cell; fig8/fig9 probing runs through "
                    "prefix-extended snapshot windows, so warm cells "
                    "restore their evaluation checkpoints from the "
                    "cache and pay evaluation cost only"
                ),
            },
        },
        "shard_walls_s": {k: round(v, 2) for k, v in sorted(shard_walls.items())},
        "per_cell": per_cell,
    }
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
