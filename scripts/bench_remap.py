#!/usr/bin/env python
"""Record remap detection/recovery benchmarks to ``BENCH_remap.json``.

One sweep, one artifact at the repo root: the remap grid cells that
carry the headline claims, run at the requested scale —

* a **no-remap control** with the detector armed: its detection count
  is the false-positive count, and the budget is zero;
* the **injected cells** (magnitude x recovery policy at the
  calibrated threshold): detection lag from injection to the flagged
  snapshot comparison, Top-5 accuracy through the change, and the
  recovery time until the served ratio map converges to the fresh
  post-change map — passive blending versus invalidate-on-detect.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_remap.py --scale default
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.change import RecoveryPolicy  # noqa: E402
from repro.experiments.harness import SCALES, scenario_params_for  # noqa: E402
from repro.experiments.remap import RemapResult, run_remap_point  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_remap.json"

#: The threshold the headline cells run at (the calibrated default of
#: the sweep grid's sensitive end).
THRESHOLD = 0.2

#: Magnitudes benched: the mandatory control plus the injected pair.
MAGNITUDES = (0.0, 1.0, 2.0)


def point_record(point) -> dict:
    """One grid cell flattened for the JSON artifact."""
    return {
        "magnitude": point.magnitude,
        "threshold": point.threshold,
        "policy": point.policy,
        "events_applied": point.events_applied,
        "injection_start_s": point.injection_start_s,
        "injection_end_s": point.injection_end_s,
        "detections": point.detections,
        "detection_times_s": [round(t, 1) for t in point.detection_times_s],
        "false_positives": point.false_positives,
        "mean_detection_lag_s": (
            None
            if point.mean_detection_lag_s is None
            else round(point.mean_detection_lag_s, 1)
        ),
        "baseline_top5": round(point.baseline_top5, 4),
        "min_top5": round(point.min_top5, 4),
        "final_top5": round(point.final_top5, 4),
        "steady_top5": round(point.steady_top5, 4),
        "final_agreement": (
            None
            if point.final_agreement is None
            else round(point.final_agreement, 4)
        ),
        "final_staleness": (
            None
            if point.final_staleness is None
            else round(point.final_staleness, 4)
        ),
        "recovery_time_s": (
            None
            if point.recovery_time_s is None
            else round(point.recovery_time_s, 1)
        ),
        "observations_invalidated": point.observations_invalidated,
        "top5_curve": {
            "times_s": [round(t, 1) for t in point.times_s],
            "top5": [round(a, 4) for a in point.top5_series],
            "map_agreement": [
                None if a is None else round(a, 4)
                for a in point.agreement_series
            ],
            "staleness": [
                None if s is None else round(s, 4)
                for s in point.staleness_series
            ],
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("quick", "default"), default="default")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--threshold", type=float, default=THRESHOLD)
    parser.add_argument("--out", type=Path, default=OUTPUT)
    args = parser.parse_args()

    base = scenario_params_for(args.scale, args.seed, meridian=False)
    rounds = SCALES[args.scale].probe_rounds
    cells = [(0.0, RecoveryPolicy.PASSIVE)]
    for magnitude in MAGNITUDES:
        if magnitude == 0.0:
            continue
        cells.append((magnitude, RecoveryPolicy.PASSIVE))
        cells.append((magnitude, RecoveryPolicy.INVALIDATE))

    points = []
    records = []
    for magnitude, policy in cells:
        started = time.perf_counter()
        point = run_remap_point(
            base,
            magnitude,
            args.threshold,
            policy=policy,
            rounds=rounds,
        )
        wall = time.perf_counter() - started
        points.append(point)
        record = point_record(point)
        record["wall_s"] = round(wall, 2)
        records.append(record)
        lag = record["mean_detection_lag_s"]
        recover = record["recovery_time_s"]
        print(
            f"magnitude {magnitude:g} / {policy.value}: "
            f"{point.events_applied} events, {point.detections} detections "
            f"({point.false_positives} FP), lag "
            f"{'-' if lag is None else f'{lag}s'}, recovery "
            f"{'-' if recover is None else f'{recover}s'}, top5 "
            f"{point.baseline_top5:.0%} -> {point.min_top5:.0%} -> "
            f"{point.final_top5:.0%} (steady {point.steady_top5:.0%}) "
            f"[{wall:.0f}s]"
        )

    result = RemapResult(points=points, rounds=rounds, interval_minutes=10.0)
    print()
    print(result.report())

    control = records[0]
    by_policy = {
        (r["magnitude"], r["policy"]): r for r in records
    }

    def recovery_edge(magnitude: float) -> dict:
        """Recovery contrast at one magnitude.

        ``edge_s`` is passive minus invalidate (positive = invalidate
        faster).  When passive never converges within the horizon the
        edge is a lower bound cut at the end of the run.
        """
        passive_rec = by_policy[(magnitude, "passive")]
        invalidate_rec = by_policy[(magnitude, "invalidate")]
        passive = passive_rec["recovery_time_s"]
        invalidate = invalidate_rec["recovery_time_s"]
        edge = None
        bound = False
        if invalidate is not None:
            if passive is not None:
                edge = round(passive - invalidate, 1)
            elif passive_rec["injection_end_s"] is not None:
                horizon_left = (
                    passive_rec["top5_curve"]["times_s"][-1]
                    - passive_rec["injection_end_s"]
                )
                edge = round(horizon_left - invalidate, 1)
                bound = True
        return {
            "passive_s": passive,
            "invalidate_s": invalidate,
            "edge_s": edge,
            "edge_is_lower_bound": bound,
            "invalidate_faster": (
                invalidate is not None
                and (passive is None or passive > invalidate)
            ),
        }

    artifact = {
        "benchmark": "CDN remapping: detection and recovery",
        "source": "scripts/bench_remap.py",
        "scale": args.scale,
        "seed": args.seed,
        "threshold": args.threshold,
        "probe_rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "false_positives_on_control": control["detections"],
        "recovery_edge_s": {
            f"{magnitude:g}": recovery_edge(magnitude)
            for magnitude in MAGNITUDES
            if magnitude != 0.0
        },
        "points": records,
        "note": (
            "recovery_time_s is measured from the last injected event "
            "until at most 10% of the observations behind the served "
            "rankings predate the change, and stays there; "
            "recovery_edge_s is passive minus invalidate per "
            "magnitude, positive when invalidating on detection sheds "
            "stale data faster than passive decay; final_agreement is "
            "the mean per-client Top-5 overlap between the served map "
            "and a fresh post-change-only map; steady_top5 is the "
            "post-change information limit of accuracy against the "
            "static RTT truth"
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return int(control["detections"] != 0)


if __name__ == "__main__":
    raise SystemExit(main())
