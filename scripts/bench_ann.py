#!/usr/bin/env python
"""Record approximate-ranking benchmarks to ``BENCH_ann.json``.

One artifact at the repo root: exact-matvec vs sketch-shortlist query
timings (and the recall the shortlist pays for the speedup) at growing
candidate populations — 1k, 10k and 100k at ``--scale default`` (1k
and 10k at ``quick``, the CI smoke).

Each point builds one seeded clustered candidate population (the
``ann`` experiment's workload), times the exact Top-5 — full sparse
matvec plus partition — and the two-stage path —
:class:`~repro.core.ann.SketchIndex` shortlist plus exact rerank — over
the same query set, and records recall@1/recall@5 against the exact
ranking.  Both loops bypass the selection memo, so the numbers are real
per-query work.

The run enforces the calibration gate at the largest default-scale
point: recall@5 ≥ 0.95 **and** speedup ≥ 10× at 100k candidates with
the default :class:`~repro.core.ann.AnnParams` — it exits non-zero if
either side of the trade is lost, so CI catches a regression in the
sketch quality as well as in the query path's speed.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_ann.py --scale default
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.ann import run_ann_bench_point  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_ann.json"

#: Candidate populations per scale; the largest default-scale point
#: carries the calibration gate.
POPULATIONS = {
    "quick": [1_000, 10_000],
    "default": [1_000, 10_000, 100_000],
}

#: The acceptance gate at the largest default-scale population.
GATE_POPULATION = 100_000
GATE_RECALL_AT_5 = 0.95
GATE_SPEEDUP = 10.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(POPULATIONS), default="default")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--out", type=Path, default=OUTPUT)
    args = parser.parse_args()

    points = []
    gate_failed = False
    for population in POPULATIONS[args.scale]:
        print(f"bench point: {population:,} candidates")
        point = run_ann_bench_point(population, args.seed, queries=args.queries)
        points.append(point)
        print(
            f"  exact {point['exact_us_per_query']:,}us/query, "
            f"approx {point['approx_us_per_query']:,}us/query "
            f"({point['speedup']}x); "
            f"recall@1 {point['recall_at_1']}, recall@5 {point['recall_at_5']}"
        )
        if population == GATE_POPULATION:
            ok = (
                point["recall_at_5"] >= GATE_RECALL_AT_5
                and point["speedup"] >= GATE_SPEEDUP
            )
            gate_failed = gate_failed or not ok
            print(
                f"  calibration gate (recall@5 >= {GATE_RECALL_AT_5}, "
                f"speedup >= {GATE_SPEEDUP}x): " + ("PASS" if ok else "FAIL")
            )

    artifact = {
        "benchmark": "sketch-based approximate top-k vs exact ranking",
        "source": "scripts/bench_ann.py",
        "scale": args.scale,
        "seed": args.seed,
        "gate": {
            "population": GATE_POPULATION,
            "recall_at_5": GATE_RECALL_AT_5,
            "speedup": GATE_SPEEDUP,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "points": points,
        "note": (
            "exact side = full sparse matvec + partition Top-5; approx "
            "side = SRP sketch shortlist (default AnnParams) + exact "
            "rerank of the shortlist; both bypass the selection memo; "
            "recall measured against the exact ranking over the same "
            "clustered query set; the largest default-scale point "
            "enforces the calibration gate"
        ),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 1 if gate_failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
