#!/usr/bin/env python
"""Assert the fig8 plan's warm run performs zero full re-simulations.

Runs the fig8 experiment plan twice over one on-disk snapshot cache
(the ``--snapshot-cache`` regime) and checks the prefix-extended
window contract end to end:

* the second run builds **no** scenario from scratch
  (``full_runs == 0``) and probes **no** rounds
  (``rounds_extended``-free: every checkpoint restores);
* every probing round of the cold run is accounted as saved on the
  warm run;
* both runs render byte-identical reports.

Exits non-zero on any violation — the ``fig8-warm-smoke`` CI job.

Run from the repo root::

    PYTHONPATH=src python scripts/fig8_warm_smoke.py --scale quick
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec import plan_for, run_cells  # noqa: E402


def _fingerprint(plan, sweep) -> str:
    by_key = sweep.by_key()
    reports = plan.combine([by_key[c.cell_key] for c in plan.cells])
    digest = hashlib.sha256()
    for name in sorted(reports):
        digest.update(name.encode())
        digest.update(reports[name].encode())
    return digest.hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick")
    args = parser.parse_args()

    plan = plan_for("fig8", args.scale)
    # Every round the schedule needs, summed over the interval cells —
    # what the cold run must probe and the warm run must restore.
    total_rounds = sum(
        max(1, int(
            float(cell.option("duration_minutes"))
            // float(cell.option("interval_minutes"))
        ))
        for cell in plan.cells
    )

    with tempfile.TemporaryDirectory(prefix="fig8-warm-smoke-") as cache_dir:
        cold = run_cells(plan.cells, jobs=1, manifest=False, store_dir=cache_dir)
        warm = run_cells(plan.cells, jobs=1, manifest=False, store_dir=cache_dir)

    for label, sweep in (("cold", cold), ("warm", warm)):
        if not sweep.ok:
            for failure in sweep.failures():
                print(f"FAILED {failure.cell_key}\n{failure.error}")
            return 1
        print(
            f"{label}: wall {sweep.wall_s:6.1f}s  "
            f"full_runs={sweep.snapshot_full_runs}  "
            f"prefix_hits={sweep.snapshot_prefix_hits}  "
            f"rounds_saved={sweep.snapshot_rounds_saved}"
        )

    failures = []
    if cold.snapshot_full_runs != len(plan.cells):
        failures.append(
            f"cold run built {cold.snapshot_full_runs} scenarios, "
            f"expected {len(plan.cells)}"
        )
    if warm.snapshot_full_runs != 0:
        failures.append(
            f"warm run built {warm.snapshot_full_runs} scenarios from "
            "scratch (expected none: every window is cached)"
        )
    if warm.snapshot_rounds_saved != total_rounds:
        failures.append(
            f"warm run restored {warm.snapshot_rounds_saved} rounds, "
            f"expected all {total_rounds}"
        )
    cold_fp = _fingerprint(plan, cold)
    warm_fp = _fingerprint(plan, warm)
    if cold_fp != warm_fp:
        failures.append(f"report fingerprints differ: {cold_fp} vs {warm_fp}")

    if failures:
        for failure in failures:
            print(f"VIOLATION: {failure}")
        return 1
    print(f"fig8 warm smoke OK: reports identical ({cold_fp[:16]}…), "
          f"warm run re-simulated nothing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
