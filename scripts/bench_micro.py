#!/usr/bin/env python
"""Record similarity-engine micro-benchmarks to ``BENCH_similarity.json``.

Runs the ranking and SMF-clustering hot paths through both the
vectorized engine (the default) and the scalar reference
(``vectorized=False``), times each with ``time.perf_counter`` loops,
and writes one JSON artifact at the repo root::

    {"results": [{"op": ..., "ns_per_op": ..., "scalar_ns_per_op": ...,
                  "speedup": ...}, ...]}

No pytest involvement — the tier-1 suite stays benchmark-free.  Run
from the repo root::

    PYTHONPATH=src python scripts/bench_micro.py

The workload matches ``benchmarks/test_bench_micro.py``: 240-candidate
ranking queries and a 500-node SMF population built from 12-replica
ratio maps over a 400-address pool (seed 7).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    RatioMap,
    SmfParams,
    rank_candidates,
    select_top_k,
    smf_cluster,
)
from repro.core.engine import clear_pack_cache, packed_for  # noqa: E402
from repro.core.similarity import SimilarityMetric, similarity  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_similarity.json"


def _random_map(rng: np.random.Generator, replicas: int = 12) -> RatioMap:
    pool = [f"172.0.{i // 100}.{i % 100}" for i in range(400)]
    chosen = rng.choice(len(pool), size=replicas, replace=False)
    counts = {pool[int(i)]: int(rng.integers(1, 40)) for i in chosen}
    return RatioMap.from_counts(counts)


def _time_ns(fn: Callable[[], object], min_seconds: float = 0.4) -> float:
    """Median-of-5 ns/op, each repeat auto-sized to ``min_seconds/5``."""
    fn()  # warm caches: steady-state cost is what a service pays
    # Calibrate the loop count.
    n = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds / 10 or n >= 1_000_000:
            break
        n = max(n * 2, int(n * (min_seconds / 10) / max(elapsed, 1e-9)))
    repeats: List[float] = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        repeats.append((time.perf_counter() - t0) / n)
    return float(np.median(repeats)) * 1e9


def _record(
    results: List[dict],
    op: str,
    vectorized: Callable[[], object],
    scalar: Optional[Callable[[], object]] = None,
    note: str = "",
) -> None:
    ns = _time_ns(vectorized)
    row = {"op": op, "ns_per_op": round(ns, 1)}
    if scalar is not None:
        scalar_ns = _time_ns(scalar)
        row["scalar_ns_per_op"] = round(scalar_ns, 1)
        row["speedup"] = round(scalar_ns / ns, 2)
    if note:
        row["note"] = note
    results.append(row)
    speedup = f"  ({row['speedup']}x vs scalar)" if scalar is not None else ""
    print(f"{op:32s} {ns:12,.0f} ns/op{speedup}")


def main() -> int:
    rng = np.random.default_rng(7)
    maps = [_random_map(rng) for _ in range(1000)]
    client = maps[0]
    candidates = {f"cand-{i}": m for i, m in enumerate(maps[1:241])}
    population = {f"node-{i}": m for i, m in enumerate(maps[:500])}

    results: List[dict] = []

    _record(
        results,
        "similarity_scalar_pair",
        lambda: similarity(maps[0], maps[1], SimilarityMetric.COSINE),
        note="scalar reference, one cosine pair",
    )
    _record(
        results,
        "rank_240_candidates",
        lambda: rank_candidates(client, candidates),
        lambda: rank_candidates(client, candidates, vectorized=False),
    )
    _record(
        results,
        "select_top5_240_candidates",
        lambda: select_top_k(client, candidates, 5),
        lambda: select_top_k(client, candidates, 5, vectorized=False),
    )
    _record(
        results,
        "smf_cluster_500_nodes",
        lambda: smf_cluster(population, SmfParams(threshold=0.1)),
        lambda: smf_cluster(population, SmfParams(threshold=0.1), vectorized=False),
    )

    # One cold-start datum: packing a 240-candidate population from
    # scratch (what the first query after membership churn pays).
    def cold_pack():
        clear_pack_cache()
        return packed_for(candidates)

    _record(results, "pack_240_candidates_cold", cold_pack, note="cache cleared each op")

    artifact = {
        "benchmark": "similarity-engine micro-benchmarks",
        "source": "scripts/bench_micro.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }
    OUTPUT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
