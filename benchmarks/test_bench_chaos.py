"""Robustness bench — CRP accuracy under injected failure episodes.

Runs the chaos sweep (:mod:`repro.experiments.chaos`) at bench scale:
fault-free baseline, the default (1x) episode rates, and a 2x stress
point.  Asserts the headline robustness claim — a resilient CRP
retains the bulk of its fault-free Top-5 accuracy at default rates —
and records the sweep in ``BENCH_chaos.json`` at the repo root so
EXPERIMENTS.md can quote measured numbers from an artifact.
"""

import json
from pathlib import Path

from benchmarks.bench_config import bench_scale, save_report
from repro.experiments.chaos import run_chaos
from repro.workloads import ScenarioParams

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def test_bench_chaos_sweep(benchmark):
    scale = bench_scale()

    def run():
        params = ScenarioParams(
            seed=13,
            dns_servers=scale.selection_clients,
            planetlab_nodes=scale.candidates,
            build_meridian=False,
            king_weight_power=1.0,
            king_rural_fraction=0.25,
        )
        return run_chaos(
            params, factors=(0.0, 1.0, 2.0), rounds=scale.selection_probe_rounds
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline = result.baseline
    assert baseline.clients_positioned > 0
    assert baseline.top5_accuracy > 0.0
    # The acceptance criterion: >80% of fault-free Top-5 retained at
    # the default episode rates.
    retention = result.top5_retention(1.0)
    assert retention > 0.8

    save_report("chaos", result.report())
    artifact = {
        "benchmark": "chaos sweep: accuracy vs injected failure intensity",
        "source": "benchmarks/test_bench_chaos.py",
        "rounds": result.rounds,
        "interval_minutes": result.interval_minutes,
        "top5_retention_at_1x": retention,
        "top5_retention_at_2x": result.top5_retention(2.0),
        "points": [
            {
                "factor": p.factor,
                "clients_positioned": p.clients_positioned,
                "clients_total": p.clients_total,
                "top1_accuracy": p.top1_accuracy,
                "top5_accuracy": p.top5_accuracy,
                "good_clusters": p.good_clusters,
                "mean_confidence": p.mean_confidence,
                "mean_recovery_s": p.mean_recovery_s,
                "quarantined_at_end": p.quarantined_at_end,
                "counters": p.counters,
            }
            for p in result.points
        ],
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
