"""Extension bench — CRP accuracy under churn (the Section II motivation).

Coordinate systems compound embedding error as the peer set turns over
(Ledlie et al., "Network coordinates in the wild" — the paper's [21]);
CRP's per-node state is independent of membership, so churn should
barely move its accuracy.  The bench runs the same world at increasing
churn intensities and compares the mean selection rank of the clients
present at the end, counting both long-lived members and recent
joiners.
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.workloads import ChurnParams, ChurnProcess, Scenario, ScenarioParams


def _mean_rank(scenario, members):
    ranks = []
    no_signal = 0
    for client in sorted(members):
        ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
        if not ranked or not ranked[0].has_signal:
            no_signal += 1
            continue
        ordering = sorted(
            scenario.candidate_names,
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(client), scenario.host(n)
            ),
        )
        ranks.append(ordering.index(ranked[0].name))
    return (mean(ranks) if ranks else float("nan")), no_signal


def test_bench_churn_stability(benchmark):
    scale = bench_scale()
    levels = {
        "none": ChurnParams(leave_probability=0.0, join_rate=0.0),
        "moderate (2%/round)": ChurnParams(leave_probability=0.02, join_rate=2.0),
        "heavy (8%/round)": ChurnParams(leave_probability=0.08, join_rate=8.0),
    }

    def run():
        rows = []
        for label, params in levels.items():
            scenario = Scenario(
                ScenarioParams(
                    seed=555,
                    dns_servers=100,
                    planetlab_nodes=min(80, scale.candidates),
                    build_meridian=False,
                    king_weight_power=1.0,
                    king_rural_fraction=0.25,
                )
            )
            scenario.run_probe_rounds(12)  # warm start
            churn = ChurnProcess(scenario, params, seed=555)
            churn.run(rounds=36)
            rank, no_signal = _mean_rank(scenario, churn.members)
            rows.append(
                [
                    label,
                    len(churn.members),
                    churn.total_joined,
                    churn.total_left,
                    f"{rank:.2f}",
                    no_signal,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["churn level", "members at end", "joined", "left", "mean Top-1 rank", "no signal"],
        rows,
        title="CRP selection accuracy under churn (36 rounds, 10-min probes)",
    )
    save_report("churn_stability", report)
    print("\n" + report)

    by_level = {row[0]: float(row[4]) for row in rows}
    # Heavy churn turned over a large share of the population...
    joined = {row[0]: row[2] for row in rows}
    assert joined["heavy (8%/round)"] > 5 * max(1, joined["moderate (2%/round)"] // 4)
    # ...yet CRP's accuracy stays in the same band (no compounding).
    assert by_level["heavy (8%/round)"] <= by_level["none"] + 3.0
