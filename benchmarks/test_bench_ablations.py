"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify why the system is built the
way it is (similarity metric, CDN answer rotation, SMF center policy,
and how much of Meridian's error was deployment health).
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.experiments.ablations import (
    run_center_policy_ablation,
    run_meridian_budget_ablation,
    run_meridian_health_ablation,
    run_similarity_ablation,
    run_spread_ablation,
)
from repro.workloads import Scenario, ScenarioParams


def _params(seed: int, clients: int, candidates: int) -> ScenarioParams:
    return ScenarioParams(
        seed=seed,
        dns_servers=clients,
        planetlab_nodes=candidates,
        build_meridian=False,
        king_weight_power=1.0,
        king_rural_fraction=0.25,
    )


def test_bench_ablation_similarity(benchmark):
    scale = bench_scale()
    scenario = Scenario(_params(51, min(150, scale.selection_clients), 80))
    result = benchmark.pedantic(
        lambda: run_similarity_ablation(scenario, probe_rounds=48),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("ablation_similarity", report)
    print("\n" + report)

    by_metric = {row[0]: float(row[1]) for row in result.rows}
    # Cosine (frequency-weighted) must not lose to set-only Jaccard.
    assert by_metric["cosine"] <= by_metric["jaccard"] + 0.5


def test_bench_ablation_spread(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_spread_ablation(
            _params(52, min(120, scale.selection_clients), 80), probe_rounds=48
        ),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("ablation_spread", report)
    print("\n" + report)

    by_spread = {row[0]: row for row in result.rows}
    # Rotation grows ratio-map support: spread 8 sees more replicas
    # than best-only answers.
    assert float(by_spread["8"][3]) > float(by_spread["1 (best only)"][3])


def test_bench_ablation_center_policy(benchmark):
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=53,
            dns_servers=scale.clustering_clients,
            planetlab_nodes=8,
            build_meridian=False,
        )
    )
    result = benchmark.pedantic(
        lambda: run_center_policy_ablation(scenario, probe_rounds=48),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("ablation_center_policy", report)
    print("\n" + report)

    by_policy = {row[0]: row for row in result.rows}
    # Strongest-mappings centers find at least as many good clusters.
    assert by_policy["strongest"][2] >= by_policy["random"][2] - 2


def test_bench_ablation_meridian_budget(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_meridian_budget_ablation(
            _params(55, min(150, scale.selection_clients), scale.candidates)
        ),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("ablation_meridian_budget", report)
    print("\n" + report)

    by_budget = {row[0]: float(row[1]) for row in result.rows}
    # Tiny budgets noticeably hurt accuracy vs unlimited probing.
    assert by_budget["2"] >= by_budget["unlimited"]
    # Budgets actually bind: probes spent differ across budgets.
    spent = [float(row[2]) for row in result.rows]
    assert max(spent) > min(spent)


def test_bench_ablation_meridian_health(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_meridian_health_ablation(
            _params(54, min(150, scale.selection_clients), scale.candidates)
        ),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("ablation_meridian_health", report)
    print("\n" + report)

    by_health = {row[0]: float(row[1]) for row in result.rows}
    # Deployment pathologies hurt Meridian's mean rank.
    assert by_health["deployed-flaky"] >= by_health["pristine"]
