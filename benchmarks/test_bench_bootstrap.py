"""Extension bench — bootstrap time (Section VI's ~100-minute claim).

A joining CRP node probes every 10 minutes with a 10-probe window; the
paper infers a bootstrap time of about 100 minutes from Figure 9.  The
bench measures the convergence curve directly and checks that accuracy
settles within roughly that horizon.
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.experiments.bootstrap import run_bootstrap_experiment
from repro.workloads import Scenario, ScenarioParams


def test_bench_bootstrap_time(benchmark):
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=100,
            dns_servers=40,
            planetlab_nodes=scale.candidates,
            build_meridian=False,
            king_weight_power=1.0,
            king_rural_fraction=0.25,
        )
    )
    result = benchmark.pedantic(
        lambda: run_bootstrap_experiment(
            scenario, joiners=30, warmup_rounds=24, max_probes=24
        ),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("bootstrap_time", report)
    print("\n" + report)

    # Most joiners have usable signal within the first few probes.
    assert result.signal_fraction_by_probe[5] > 0.6
    # Accuracy converges within ~150 simulated minutes (paper: ~100).
    minutes = result.convergence_minutes(slack=1.0)
    assert minutes is not None
    assert minutes <= 150.0
    # And the steady state is genuinely good (near the top of the list).
    assert result.steady_state_rank() < 8.0
