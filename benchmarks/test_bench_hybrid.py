"""Extension bench — the paper's Section VII open problem.

Compares three services on the same probe history:

* **CRP only** — accurate where maps overlap, silent where they don't;
* **coordinates only** — Vivaldi trained from passive samples;
* **hybrid** — CRP block first, coordinate tail for orthogonal pairs.

The hybrid must keep CRP's accuracy where CRP has signal while giving
*every* client a full ranking — relative positioning between arbitrary
hosts with little-to-no overhead.
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.baselines import VivaldiSystem
from repro.hybrid import HybridPositioning, RankSource, train_coordinates_passively
from repro.workloads import Scenario, ScenarioParams


def test_bench_hybrid_positioning(benchmark):
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=707,
            dns_servers=min(200, scale.selection_clients),
            planetlab_nodes=scale.candidates,
            build_meridian=False,
        )
    )

    def run():
        scenario.run_probe_rounds(48)
        coordinates = VivaldiSystem(seed=707)
        train_coordinates_passively(
            coordinates,
            scenario.network,
            scenario.clients + scenario.candidates,
            samples_per_node=16,
            seed=707,
        )
        return HybridPositioning(scenario.crp, coordinates), coordinates

    hybrid, coordinates = benchmark.pedantic(run, rounds=1, iterations=1)

    orderings = {}
    for client in scenario.client_names:
        orderings[client] = sorted(
            scenario.candidate_names,
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(client), scenario.host(n)
            ),
        )

    crp_ranks, hybrid_ranks, coord_ranks = [], [], []
    crp_covered = 0
    for client in scenario.client_names:
        ordering = orderings[client]
        # CRP only.
        ranked = scenario.crp.rank_servers(client, scenario.candidate_names)
        if ranked and ranked[0].has_signal:
            crp_covered += 1
            crp_ranks.append(ordering.index(ranked[0].name))
        # Coordinates only.
        coord_pick = coordinates.closest(client, scenario.candidate_names)
        coord_ranks.append(ordering.index(coord_pick))
        # Hybrid.
        hybrid_pick = hybrid.closest(client, scenario.candidate_names)
        hybrid_ranks.append(ordering.index(hybrid_pick.name))

    total = len(scenario.client_names)
    rows = [
        ["CRP only", f"{crp_covered}/{total}", f"{mean(crp_ranks):.2f}" if crp_ranks else "-"],
        ["coordinates only", f"{total}/{total}", f"{mean(coord_ranks):.2f}"],
        ["hybrid", f"{total}/{total}", f"{mean(hybrid_ranks):.2f}"],
    ]
    report = format_table(
        ["service", "clients answered", "mean Top-1 rank"],
        rows,
        title="Hybrid positioning (Sec. VII open problem): coverage vs accuracy",
    )
    save_report("hybrid_positioning", report)
    print("\n" + report)

    # Hybrid answers everyone; CRP alone may not.
    assert crp_covered <= total
    # Hybrid's accuracy is at least as good as coordinates alone...
    assert mean(hybrid_ranks) <= mean(coord_ranks) + 0.5
    # ...and no worse than CRP on average over the full population
    # (hybrid == CRP wherever CRP had signal).
    if crp_ranks:
        assert mean(hybrid_ranks) <= mean(crp_ranks) + max(2.0, 0.5 * mean(crp_ranks))
