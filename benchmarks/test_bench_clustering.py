"""Benchmarks for Table I, Figure 6 and Figure 7 — one shared
clustering study over 177 broadly-distributed DNS servers, as in the
paper's Section V-B.

Shape targets:

* Table I — CRP clusters several times more nodes than ASN, in more
  clusters; raising t lowers coverage and mean cluster size while the
  cluster count rises slightly.
* Figure 6 — most clusters' intra distance is small (diameters mostly
  under 40 ms) with inter-center distances to the bottom-right of the
  curve (good clusters).
* Figure 7 — CRP finds more good clusters than ASN in both diameter
  buckets (paper: ≥1.5x in 0–25 ms, >2x in 25–75 ms).
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.experiments.clustering import run_clustering_study
from repro.experiments.fig6_cdf import run_fig6
from repro.experiments.fig7_buckets import run_fig7
from repro.experiments.table1_summary import run_table1
from repro.workloads import Scenario, ScenarioParams


@pytest.fixture(scope="module")
def study_setup():
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=177,
            dns_servers=scale.clustering_clients,
            planetlab_nodes=8,
            build_meridian=False,
        )
    )
    study = run_clustering_study(
        scenario, probe_rounds=scale.clustering_probe_rounds
    )
    return scenario, study


def test_bench_table1_summary(benchmark, study_setup):
    scenario, study = study_setup
    table1 = run_table1(scenario, study=study)
    benchmark.pedantic(lambda: table1.report(), rounds=1, iterations=1)
    report = table1.report()
    save_report("table1_cluster_summary", report)
    print("\n" + report)

    crp_low = study.crp_result(0.01)
    crp_mid = study.crp_result(0.1)
    crp_high = study.crp_result(0.5)
    asn = study.asn_result()

    # Coverage falls as t rises (paper: 74% → 72% → 64%).
    assert crp_low.clustered_count >= crp_mid.clustered_count >= crp_high.clustered_count
    # Mean cluster size falls as t rises (paper: 3.74 → 3.56 → 3.00).
    assert crp_low.summary()["mean_size"] >= crp_high.summary()["mean_size"]
    # CRP clusters far more nodes than ASN (paper: 128 vs 41, >3x; our
    # denser simulated AS space makes ASN cluster more nodes, so the
    # factor lands nearer 2.5x).
    assert crp_mid.clustered_count > 2.0 * asn.clustered_count
    # ...in more clusters (paper: 36 vs 16, >2x).
    assert len(crp_mid.clusters) > 1.5 * len(asn.clusters)
    # ASN covers a minority of nodes (paper: 23%).
    assert asn.clustered_fraction < 0.4


def test_bench_fig6_cluster_cdf(benchmark, study_setup):
    scenario, study = study_setup
    fig6 = run_fig6(scenario, study=study)
    benchmark.pedantic(lambda: fig6.report(), rounds=1, iterations=1)
    report = fig6.report()
    save_report("fig6_cluster_cdf", report)
    print("\n" + report)

    assert fig6.qualities, "no clusters under the 75 ms diameter cap"
    # Most clusters are good: members closer to their own center than
    # other centers are (the shaded region of Fig. 6).
    assert fig6.good_fraction > 0.7
    # "most of the clusters exhibit a diameter of less than 40 ms"
    assert fig6.fraction_diameter_below(40.0) > 0.5


def test_bench_fig7_good_clusters(benchmark, study_setup):
    scenario, study = study_setup
    fig7 = run_fig7(scenario, study=study)
    benchmark.pedantic(lambda: fig7.report(), rounds=1, iterations=1)
    report = fig7.report()
    save_report("fig7_good_clusters", report)
    print("\n" + report)

    tight = (0.0, 25.0)
    wide = (25.0, 75.0)
    # CRP beats ASN in both buckets (paper: ≥1.5x and >2x).
    assert fig7.crp_buckets[tight] > fig7.asn_buckets[tight]
    assert fig7.crp_buckets[wide] >= fig7.asn_buckets[wide]
    # And the advantage is substantial in at least one bucket.
    assert max(fig7.advantage(tight), fig7.advantage(wide)) >= 1.5
