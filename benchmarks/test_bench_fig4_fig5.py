"""Benchmarks for Figure 4 (selection latency) and Figure 5 (relative
error) — one shared experiment run, exactly as in the paper.

Shape targets (paper, Section V-A):

* CRP Top-5 tracks Meridian: a substantial fraction of clients within
  a few ms, and CRP *better* for a meaningful fraction.
* Both curves hug the optimal selection for most clients and share a
  heavy tail; the poor-result tails barely overlap.
* Relative errors are small for most clients, with a small negative
  fraction from network dynamics.
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.analysis.stats import median, percentile
from repro.experiments.fig4_closest import run_fig4
from repro.experiments.fig5_relerr import run_fig5
from repro.meridian import FailureRates
from repro.workloads import Scenario, ScenarioParams


@pytest.fixture(scope="module")
def experiment():
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=2008,
            dns_servers=scale.selection_clients,
            planetlab_nodes=scale.candidates,
            build_meridian=True,
            meridian_failures=FailureRates(),
            # The selection experiments' client pool follows raw host
            # density (the paper's 1,000 King servers were not
            # dispersion-balanced), so most clients sit in regions with
            # several nearby candidates.
            king_weight_power=1.0,
            king_rural_fraction=0.25,
        )
    )
    fig4 = run_fig4(scenario, probe_rounds=scale.selection_probe_rounds)
    fig5 = run_fig5(scenario, outcome=fig4.outcome)
    return scenario, fig4, fig5


def test_bench_fig4_closest_node(benchmark, experiment):
    scenario, fig4, _ = experiment
    benchmark.pedantic(lambda: fig4.report(), rounds=1, iterations=1)
    report = fig4.report()
    save_report("fig4_closest_node", report)
    print("\n" + report)

    outcome = fig4.outcome
    # CRP Top-5 is comparable to Meridian for a large share of clients.
    assert outcome.fraction_crp5_within(10.0) > 0.25
    # CRP improves on Meridian for a meaningful fraction (paper >25%).
    assert outcome.fraction_crp5_improves() > 0.10
    # Meridian badly loses (2x) on some clients (paper ~10%).
    assert outcome.fraction_meridian_twice_crp5() > 0.02
    # The poor tails of the two systems are mostly distinct (paper <20%).
    assert outcome.poor_overlap_fraction() < 0.5
    # Median selections land near the optimum for both systems.
    assert median(fig4.crp_top1_series) < 2.5 * median(
        outcome.series("best_rtt_ms")
    )


def test_bench_fig5_relative_error(benchmark, experiment):
    _, _, fig5 = experiment
    benchmark.pedantic(lambda: fig5.report(), rounds=1, iterations=1)
    report = fig5.report()
    save_report("fig5_relative_error", report)
    print("\n" + report)

    # Most clients see small relative error for CRP Top-1 and Meridian.
    assert median(fig5.crp_top1_series) < 20.0
    assert median(fig5.meridian_series) < 20.0
    # Errors blow up only in the tail (the poorly-covered clients).
    assert percentile(fig5.crp_top1_series, 60.0) < percentile(
        fig5.crp_top1_series, 99.0
    )
    # Network dynamics produce a small negative fraction (paper: "the
    # small fraction of negative values...").
    negative = fig5.negative_fraction("meridian_error_ms")
    assert 0.0 < negative < 0.6
