"""Library micro-benchmarks: throughput of the hot paths.

Unlike the figure benches (single-shot experiment reproductions),
these use pytest-benchmark's repeated timing to characterise the
library itself — what a service embedding CRP would care about:

* cosine similarity over realistic ratio maps,
* full candidate ranking (one positioning query),
* SMF clustering over a population,
* CDN mapping answer selection (the simulator's hot loop),
* tracker windowed-map construction.

The ranking and clustering benches come in pairs: the default
vectorized engine path next to the ``vectorized=False`` scalar
reference, so the engine's speedup is measured in-suite (the ratio the
acceptance criteria quote; ``scripts/bench_micro.py`` records it to
``BENCH_similarity.json``).
"""

import numpy as np
import pytest

from repro.cdn import MappingParams, MappingSystem
from repro.cdn.replica import deploy_replicas
from repro.core import RatioMap, SmfParams, cosine_similarity, rank_candidates, smf_cluster
from repro.core.tracker import RedirectionTracker
from repro.netsim import ASRegistry, HostKind, Network, SimClock, Topology, default_world
from repro.netsim.rng import derive_rng


def _random_map(rng, replicas=12):
    pool = [f"172.0.{i // 100}.{i % 100}" for i in range(400)]
    chosen = rng.choice(len(pool), size=replicas, replace=False)
    counts = {pool[int(i)]: int(rng.integers(1, 40)) for i in chosen}
    return RatioMap.from_counts(counts)


@pytest.fixture(scope="module")
def maps():
    rng = np.random.default_rng(7)
    return [_random_map(rng) for _ in range(1000)]


def test_bench_micro_cosine_similarity(benchmark, maps):
    a, b = maps[0], maps[1]
    benchmark(cosine_similarity, a, b)


def test_bench_micro_rank_240_candidates(benchmark, maps):
    client = maps[0]
    candidates = {f"cand-{i}": m for i, m in enumerate(maps[1:241])}
    result = benchmark(rank_candidates, client, candidates)
    assert len(result) == 240


def test_bench_micro_rank_240_candidates_scalar(benchmark, maps):
    client = maps[0]
    candidates = {f"cand-{i}": m for i, m in enumerate(maps[1:241])}
    result = benchmark(
        lambda: rank_candidates(client, candidates, vectorized=False)
    )
    assert len(result) == 240


def test_bench_micro_smf_500_nodes(benchmark, maps):
    population = {f"node-{i}": m for i, m in enumerate(maps[:500])}
    result = benchmark.pedantic(
        smf_cluster, args=(population, SmfParams(threshold=0.1)), rounds=3, iterations=1
    )
    assert result.total_nodes == 500


def test_bench_micro_smf_500_nodes_scalar(benchmark, maps):
    population = {f"node-{i}": m for i, m in enumerate(maps[:500])}
    result = benchmark.pedantic(
        lambda: smf_cluster(population, SmfParams(threshold=0.1), vectorized=False),
        rounds=3,
        iterations=1,
    )
    assert result.total_nodes == 500


def test_bench_micro_tracker_window(benchmark):
    tracker = RedirectionTracker("node")
    rng = np.random.default_rng(3)
    for i in range(1000):
        tracker.observe(float(i), "x.test", [f"r{int(rng.integers(0, 20))}"])
    result = benchmark(tracker.ratio_map, window_probes=10)
    assert result is not None


def test_bench_micro_mapping_select(benchmark):
    world = default_world()
    rng = derive_rng(7, "micro")
    registry = ASRegistry.generate(world, rng)
    topology = Topology(world, registry)
    network = Network(topology, SimClock(), seed=7)
    deployment = deploy_replicas(topology, rng)
    mapping = MappingSystem(network, deployment, seed=7)
    client = topology.create_host(
        "micro-client", HostKind.DNS_SERVER, world.metro("london"), rng
    )
    mapping.ranking(client)  # warm the epoch cache: measure steady state
    result = benchmark(mapping.select, client)
    assert result


def test_bench_micro_network_rtt(benchmark):
    world = default_world()
    rng = derive_rng(8, "micro")
    registry = ASRegistry.generate(world, rng)
    topology = Topology(world, registry)
    network = Network(topology, SimClock(), seed=8)
    a = topology.create_host("rtt-a", HostKind.DNS_SERVER, world.metro("london"), rng)
    b = topology.create_host("rtt-b", HostKind.DNS_SERVER, world.metro("tokyo"), rng)
    network.rtt_ms(a, b)  # warm caches
    value = benchmark(network.rtt_ms, a, b)
    assert value > 0
