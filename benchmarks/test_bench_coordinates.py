"""Extension bench — CRP vs coordinate-embedding systems.

Section II positions CRP against embedding approaches: "while network
embedding ensures scalability by avoiding direct measurements, the
embedding process itself can introduce significant errors (e.g. in the
selection of landmarks)."  This bench puts numbers on that trade for
closest-node selection:

* **CRP** — zero measurements, reuses CDN redirections.
* **GNP** — landmark-based embedding; every client measures RTT to all
  landmarks (15 probes per client here).
* **Vivaldi** — decentralised embedding; nodes continuously exchange
  samples (64 per node here).
* **oracle / random** — the ceiling and the floor.
"""

import numpy as np
import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.analysis.stats import mean
from repro.analysis.tables import format_table
from repro.baselines import GnpParams, GnpSystem, RandomSelector, VivaldiSystem
from repro.workloads import Scenario, ScenarioParams


def test_bench_coordinate_system_comparison(benchmark):
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=303,
            dns_servers=min(150, scale.selection_clients),
            planetlab_nodes=min(80, scale.candidates),
            build_meridian=False,
            king_weight_power=1.0,
            king_rural_fraction=0.25,
        )
    )

    def run():
        scenario.run_probe_rounds(48)

        # GNP: 15 well-spread landmarks from the candidate set.
        landmarks = scenario.candidates[::max(1, len(scenario.candidates) // 15)][:15]
        names = [h.name for h in landmarks]
        count = len(landmarks)
        matrix = np.zeros((count, count))
        for i in range(count):
            for j in range(i + 1, count):
                matrix[i, j] = matrix[j, i] = scenario.network.measure_rtt_median_ms(
                    landmarks[i], landmarks[j]
                )
        gnp = GnpSystem(GnpParams(dimensions=5, restarts=2), seed=303)
        gnp.fit_landmarks(names, matrix)
        gnp_probes = count * (count - 1) // 2 * 3
        for host in scenario.candidates + scenario.clients:
            if host.name in names:
                continue
            rtts = [
                scenario.network.measure_rtt_median_ms(host, lm) for lm in landmarks
            ]
            gnp.place_node(host.name, rtts)
            gnp_probes += count * 3

        # Vivaldi: continuous peer sampling, 64 samples per node.
        vivaldi = VivaldiSystem(seed=303)
        everyone = scenario.clients + scenario.candidates
        for host in everyone:
            vivaldi.add_node(host.name)
        rng = np.random.default_rng(303)
        vivaldi_probes = 0
        ordered = sorted(h.name for h in everyone)
        by_name = {h.name: h for h in everyone}
        for name in ordered:
            for _ in range(64):
                peer = ordered[int(rng.integers(0, len(ordered)))]
                if peer == name:
                    continue
                sample = scenario.network.measure_rtt_ms(by_name[name], by_name[peer])
                vivaldi.observe_symmetric(name, peer, sample)
                vivaldi_probes += 1
        return gnp, gnp_probes, vivaldi, vivaldi_probes

    gnp, gnp_probes, vivaldi, vivaldi_probes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    random_baseline = RandomSelector(seed=303)
    ranks = {"crp": [], "gnp": [], "vivaldi": [], "random": []}
    covered = 0
    for client in scenario.client_names:
        ordering = sorted(
            scenario.candidate_names,
            key=lambda n: scenario.network.base_rtt_ms(
                scenario.host(client), scenario.host(n)
            ),
        )
        picked = scenario.crp.rank_servers(client, scenario.candidate_names)
        if picked and picked[0].has_signal:
            covered += 1
            ranks["crp"].append(ordering.index(picked[0].name))
        ranks["gnp"].append(ordering.index(gnp.closest(client, scenario.candidate_names)))
        ranks["vivaldi"].append(
            ordering.index(vivaldi.closest(client, scenario.candidate_names))
        )
        ranks["random"].append(
            ordering.index(random_baseline.closest(client, scenario.candidate_names))
        )

    total = len(scenario.client_names)
    rows = [
        ["CRP (redirection reuse)", 0, f"{covered}/{total}", f"{mean(ranks['crp']):.2f}"],
        ["GNP (landmarks)", gnp_probes, f"{total}/{total}", f"{mean(ranks['gnp']):.2f}"],
        ["Vivaldi (p2p samples)", vivaldi_probes, f"{total}/{total}", f"{mean(ranks['vivaldi']):.2f}"],
        ["random", 0, f"{total}/{total}", f"{mean(ranks['random']):.2f}"],
    ]
    report = format_table(
        ["system", "RTT probes spent", "clients answered", "mean Top-1 rank"],
        rows,
        title="CRP vs coordinate systems (closest-node selection)",
    )
    save_report("coordinates_comparison", report)
    print("\n" + report)

    # CRP matches or beats both embeddings where it has signal — while
    # spending zero probes.
    assert mean(ranks["crp"]) <= mean(ranks["gnp"]) + 1.0
    assert mean(ranks["crp"]) <= mean(ranks["vivaldi"]) + 1.0
    # Everything beats random decisively.
    assert mean(ranks["random"]) > 3 * mean(ranks["crp"])