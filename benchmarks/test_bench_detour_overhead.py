"""Benchmarks for the two supporting claims.

* §II / ref [42] — "in approximately 50% of scenarios, the best
  measured one-hop path through an Akamai server outperforms the
  direct path in terms of latency."
* §VI — CRP's DNS load on the CDN is a tiny fraction of an ordinary
  web client's (the commensalism claim), and per-node cost is O(1) in
  the number of participants.
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.experiments.detour import run_detour
from repro.experiments.overhead import run_overhead
from repro.workloads import Scenario, ScenarioParams


def test_bench_detour(benchmark):
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=1906,
            dns_servers=max(60, scale.clustering_clients // 2),
            planetlab_nodes=8,
            build_meridian=False,
        )
    )
    result = benchmark.pedantic(
        lambda: run_detour(scenario, pairs=scale.detour_pairs, probe_rounds=24),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("detour", report)
    print("\n" + report)

    # The paper's headline: roughly half of pairs have a winning
    # one-hop detour through a redirection replica.
    assert 0.3 < result.win_fraction < 0.8
    assert len(result.records) > scale.detour_pairs * 0.8


def test_bench_overhead(benchmark):
    scale = bench_scale()
    scenario = Scenario(
        ScenarioParams(
            seed=360,
            dns_servers=60,
            planetlab_nodes=8,
            build_meridian=False,
        )
    )
    result = benchmark.pedantic(
        lambda: run_overhead(scenario, probe_rounds=36),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("overhead", report)
    print("\n" + report)

    # At the paper's recommended 100-minute interval a CRP client is a
    # few percent of a web client's DNS load.
    assert result.load_fraction(100.0) < 0.05
    # Even aggressive 20-minute probing stays well under a web client.
    assert result.load_fraction(20.0) < 0.25

    # O(1) scalability: per-node measured load must not grow with the
    # population — compare against a double-size scenario.
    bigger = Scenario(
        ScenarioParams(seed=360, dns_servers=120, planetlab_nodes=8, build_meridian=False)
    )
    bigger_result = run_overhead(bigger, probe_rounds=36)
    ratio = (
        bigger_result.measured_queries_per_client_day
        / result.measured_queries_per_client_day
    )
    assert 0.8 < ratio < 1.2
