"""Shared configuration for the paper-reproduction benchmarks.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick``  — CI-sized worlds (minutes → seconds), shape checks only.
* ``default``— a 400-client / 240-candidate run: large enough that
  every curve and statistic is meaningful, small enough to finish the
  whole suite in minutes.
* ``paper``  — the paper's full 1,000-client scale.

Each bench writes its rendered report (the same rows/series the paper
presents) to ``benchmarks/reports/<name>.txt`` so EXPERIMENTS.md can
quote measured-vs-paper numbers from a recorded artifact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

REPORTS_DIR = Path(__file__).parent / "reports"


@dataclass(frozen=True)
class BenchScale:
    """Knobs that vary with the selected scale."""

    #: Fig. 4/5/8/9 client population.
    selection_clients: int
    #: Candidate servers (the paper's 240 active PlanetLab nodes).
    candidates: int
    #: Probe rounds for the Fig. 4/5 experiment (10-minute interval).
    selection_probe_rounds: int
    #: Clustering population (the paper's 177 DNS servers).
    clustering_clients: int
    #: Probe rounds for the clustering study.
    clustering_probe_rounds: int
    #: Fig. 8 sweep duration, minutes.
    sweep_duration_minutes: float
    #: Fig. 9 probe rounds at 10-minute interval.
    window_probe_rounds: int
    #: Detour pairs sampled.
    detour_pairs: int


_SCALES = {
    "quick": BenchScale(
        selection_clients=60,
        candidates=40,
        selection_probe_rounds=24,
        clustering_clients=60,
        clustering_probe_rounds=24,
        sweep_duration_minutes=1440.0,
        window_probe_rounds=48,
        detour_pairs=80,
    ),
    "default": BenchScale(
        selection_clients=400,
        candidates=240,
        selection_probe_rounds=96,
        clustering_clients=177,
        clustering_probe_rounds=60,
        sweep_duration_minutes=4.0 * 1440.0,
        window_probe_rounds=144,
        detour_pairs=200,
    ),
    "paper": BenchScale(
        selection_clients=1000,
        candidates=240,
        selection_probe_rounds=144,
        clustering_clients=177,
        clustering_probe_rounds=84,
        sweep_duration_minutes=5.0 * 1440.0,
        window_probe_rounds=288,
        detour_pairs=400,
    ),
}


def bench_scale() -> BenchScale:
    """The active scale (``REPRO_BENCH_SCALE``, default ``default``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE={name!r}; pick one of {sorted(_SCALES)}"
        ) from None


def save_report(name: str, text: str) -> Path:
    """Persist a bench's rendered report and return its path."""
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
