"""Benchmarks for Figure 8 (probe-interval sweep) and Figure 9
(window-size sweep).

Shape targets:

* Fig. 8 — 100-minute probing is nearly as good as 20-minute probing;
  very long intervals (2000 min) degrade average rank and leave some
  clients without rankable data at all.
* Fig. 9 — a 10-probe window is sufficient; 30 probes adds only a
  small improvement; "all probes" is better for most clients but
  *worse* for a meaningful minority (stale history under dynamics).
"""

import pytest

from benchmarks.bench_config import bench_scale, save_report
from repro.experiments.fig8_interval import run_fig8
from repro.experiments.fig9_window import run_fig9
from repro.workloads import Scenario, ScenarioParams


def _selection_params(seed: int, scale) -> ScenarioParams:
    return ScenarioParams(
        seed=seed,
        dns_servers=scale.selection_clients,
        planetlab_nodes=scale.candidates,
        build_meridian=False,
        king_weight_power=1.0,
        king_rural_fraction=0.25,
        # The real King population had intermittently-reachable
        # servers; at very long probe intervals a flaky client can end
        # an experiment with no usable data (the paper's shrinking
        # client counts in Fig. 8).
        client_flaky_fraction=0.1,
        flaky_failure_rate=0.6,
    )


def test_bench_fig8_probe_interval(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: run_fig8(
            _selection_params(8, scale),
            intervals_minutes=(20.0, 100.0, 500.0, 2000.0),
            duration_minutes=scale.sweep_duration_minutes,
            evaluations=4,
        ),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("fig8_probe_interval", report)
    print("\n" + report)

    by_interval = result.points
    # "an effective service can be based on request intervals as low
    # as 100 minutes": 100-minute ranks track 20-minute ranks closely.
    assert by_interval[100.0].overall_mean <= by_interval[20.0].overall_mean + 3.0
    # The extreme interval is clearly worse on average rank...
    assert by_interval[2000.0].overall_mean > by_interval[20.0].overall_mean
    # ...and fewer clients can be ranked at all (the paper's "smaller
    # number of DNS servers for which average rank is plotted").
    assert len(by_interval[2000.0].avg_rank_by_client) <= len(
        by_interval[20.0].avg_rank_by_client
    )


def test_bench_fig9_window_size(benchmark):
    scale = bench_scale()
    scenario = Scenario(_selection_params(9, scale))
    result = benchmark.pedantic(
        lambda: run_fig9(
            scenario,
            windows=(5, 10, 30, None),
            probe_rounds=scale.window_probe_rounds,
            evaluations=4,
        ),
        rounds=1,
        iterations=1,
    )
    report = result.report()
    save_report("fig9_window_size", report)
    print("\n" + report)

    by_window = result.points
    # A 10-probe window suffices: within a couple of rank positions of
    # the 30-probe window.
    assert by_window[10].overall_mean <= by_window[30].overall_mean + 2.0
    # 5 probes is noticeably weaker than 30.
    assert by_window[5].overall_mean >= by_window[30].overall_mean - 0.5
    # "all probes" wins for most clients but loses for a meaningful
    # minority (paper: better for two-thirds, worse for the rest).
    beats = result.fraction_all_beats(10)
    assert 0.3 < beats < 0.95
